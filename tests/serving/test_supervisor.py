"""Heartbeat supervisor: probes, restarts, backoff, circuit breaker.

Every scenario runs on deterministic in-process workers under a manual
clock, so each probe instant, backoff delay and breaker transition is
an exact, reproducible point on the timeline -- including the classic
races: a probe straddling a drain, a worker dying *during* its
probation window, and the half-open probe of a quarantined worker.
"""

from __future__ import annotations

import pytest

from repro.serving import framing
from repro.serving.cluster import UnknownWorkerError
from repro.serving.supervisor import (
    BACKOFF,
    CLOSED,
    HALF_OPEN,
    OPEN,
    PROBATION,
    QUARANTINED,
    SERVING,
    HeartbeatSupervisor,
)
from repro.serving.traffic import multi_tenant_traffic


def connect_traffic(context, cluster, tenants=2, clients_per=2, requests=2):
    tenants_, clients_, trace = multi_tenant_traffic(
        context, tenants, clients_per, requests
    )
    for t in tenants_:
        t.register_with(cluster)
    for c in clients_:
        c.connect_cluster(cluster)
    return tenants_, clients_, trace


def make_supervisor(cluster, **kwargs):
    """Supervisor with tight, jitter-free timing (delays exact)."""
    defaults = dict(
        probe_interval=1.0,
        miss_threshold=3,
        probation_window=5.0,
        quarantine_window=10.0,
        flap_threshold=2,
        backoff_base=4.0,
        backoff_factor=2.0,
        backoff_jitter=0.0,
        seed=7,
    )
    defaults.update(kwargs)
    return HeartbeatSupervisor(cluster, **defaults)


def placements(cluster, clients):
    return {c.client_id: cluster.client_worker(c.client_id) for c in clients}


class TestHeartbeat:
    def test_healthy_workers_stay_serving(self, make_cluster, manual_clock):
        cluster = make_cluster(worker_count=3)
        sup = make_supervisor(cluster)
        sup.run(until=10.0)
        assert sup.stats.deaths == 0
        assert sup.stats.missed_probes == 0
        assert sup.stats.probes > 0
        health = sup.worker_health()
        assert set(health) == set(cluster.workers)
        for view in health.values():
            assert view.phase == SERVING
            assert view.breaker == CLOSED
            assert view.heartbeat_age == 0.0  # probed this very tick

    def test_death_needs_n_consecutive_misses(self, make_cluster, manual_clock):
        cluster = make_cluster(worker_count=2)
        sup = make_supervisor(cluster, miss_threshold=3)
        sup.tick()
        victim = cluster.ring.worker_ids[0]
        cluster.workers[victim].kill()  # silent crash: no traffic notices
        manual_clock.advance(1.0)
        sup.tick()
        manual_clock.advance(1.0)
        sup.tick()
        # two misses: still only suspected, no failover yet
        assert sup.stats.deaths == 0
        assert sup.worker_health()[victim].missed_probes == 2
        manual_clock.advance(1.0)
        sup.tick()
        # third consecutive miss: declared dead, restart scheduled
        assert sup.stats.deaths == 1
        assert sup.worker_health()[victim].phase == BACKOFF

    def test_probe_error_counts_as_miss(self, make_cluster, manual_clock):
        cluster = make_cluster(worker_count=2)
        victim = cluster.ring.worker_ids[0]

        def exploding_ping():
            raise RuntimeError("transport wedged")

        cluster.workers[victim].ping = exploding_ping
        sup = make_supervisor(cluster, miss_threshold=2)
        sup.tick()
        manual_clock.advance(1.0)
        sup.tick()
        assert sup.stats.probe_errors == 2
        assert sup.stats.missed_probes == 2
        assert sup.stats.deaths == 1  # 2 misses at threshold 2


class TestRestartAndPlacement:
    def test_death_fails_over_inflight_and_restores_placement(
        self, serving_context, make_cluster, manual_clock
    ):
        cluster = make_cluster(worker_count=4)
        tenants, clients, trace = connect_traffic(serving_context, cluster)
        before = placements(cluster, clients)
        for cid, fr in trace:
            cluster.receive(cid, fr)

        sup = make_supervisor(cluster)
        sup.tick()
        victim = max(
            cluster.ring.worker_ids,
            key=lambda w: sum(
                1 for (_, _), (wid, _) in cluster._inflight.items() if wid == w
            ),
        )
        at_victim = sum(
            1 for (_, _), (wid, _) in cluster._inflight.items() if wid == victim
        )
        assert at_victim > 0
        cluster.workers[victim].kill()

        # three missed probes at t=1,2,3 declare death at t=3
        sup.run(until=3.0)
        assert sup.stats.deaths == 1
        assert cluster.report.failed_over_requests == at_victim
        assert victim not in cluster.ring
        # the failover errors are classified retryable
        errs = [
            framing.decode_frame(b)
            for c in clients
            for b in cluster.take_outbox(c.client_id)
        ]
        assert errs
        assert all(framing.is_retryable_error(f) for f in errs)

        # backoff: first restart delay is base=4s after the t=3 death
        sup.run(until=6.9)
        assert sup.worker_health()[victim].phase == BACKOFF
        assert victim not in cluster.ring
        sup.run(until=7.1)
        assert sup.worker_health()[victim].phase == PROBATION
        assert victim in cluster.ring
        assert sup.stats.restarts == 1

        # probation passes -> serving, and consistent hashing has put
        # every tenant back exactly where it was before the crash
        sup.run(until=13.0)
        assert sup.worker_health()[victim].phase == SERVING
        assert placements(cluster, clients) == before

        # the recovered cluster still serves (conservation intact)
        for c in clients:
            cluster.receive(c.client_id, c.request_bytes("double", [1.0, 2.0]))
        cluster.pump()  # queue -> lanes
        manual_clock.advance(0.01)
        cluster.drain()  # flush everything pending anywhere
        r = cluster.report
        assert (
            r.completed + r.shed_requests + r.failed_over_requests
            + r.expired_requests == r.submitted
        )

    def test_backoff_schedule_is_deterministic(self, make_cluster, manual_clock):
        """Same seed => the same jittered restart schedule, run to run."""

        def collect_schedule():
            cluster = make_cluster(worker_count=2)
            sup = make_supervisor(
                cluster,
                backoff_jitter=0.5,
                seed=99,
                probation_window=2.0,
                backoff_max=100.0,  # uncapped: expose the exponential
            )
            start = manual_clock.now
            sup.tick()
            victim = cluster.ring.worker_ids[0]
            delays = []
            # kill it three times; record each scheduled restart delay
            for _ in range(3):
                cluster.workers[victim].kill()
                while sup.worker_health()[victim].phase != BACKOFF:
                    manual_clock.advance(0.5)
                    sup.tick()
                death_at = manual_clock.now
                while sup.worker_health()[victim].phase == BACKOFF:
                    manual_clock.advance(0.125)
                    sup.tick()
                delays.append(manual_clock.now - death_at)
            return [round(d, 6) for d in delays]

        first = collect_schedule()
        second = collect_schedule()
        assert first == second
        # exponential growth must survive the jitter: attempt 1 is drawn
        # from [4, 6), attempt 2 from [8, 12) -- disjoint intervals
        assert first[0] < first[1] < first[2]


class TestCircuitBreaker:
    def kill_until_dead(self, sup, cluster, manual_clock, victim):
        cluster.workers[victim].kill()
        deaths = sup.stats.deaths
        while sup.stats.deaths == deaths:
            manual_clock.advance(1.0)
            sup.tick()

    def wait_phase(self, sup, manual_clock, victim, phase, step=0.25, limit=400):
        for _ in range(limit):
            if sup.worker_health()[victim].phase == phase:
                return
            manual_clock.advance(step)
            sup.tick()
        raise AssertionError(
            f"{victim} never reached {phase}; "
            f"now {sup.worker_health()[victim]}"
        )

    def test_flapping_worker_is_quarantined_then_rehabilitated(
        self, serving_context, make_cluster, manual_clock
    ):
        cluster = make_cluster(worker_count=3)
        tenants, clients, _ = connect_traffic(serving_context, cluster)
        before = placements(cluster, clients)
        sup = make_supervisor(cluster, flap_threshold=2)
        sup.tick()
        victim = cluster.ring.worker_ids[0]

        # death 1 (serving): restart to probation, breaker stays closed
        self.kill_until_dead(sup, cluster, manual_clock, victim)
        self.wait_phase(sup, manual_clock, victim, PROBATION)
        assert sup.worker_health()[victim].breaker == CLOSED

        # death 2 (during probation): flap 1 of 2 -- still no breaker
        self.kill_until_dead(sup, cluster, manual_clock, victim)
        assert sup.stats.quarantines == 0
        self.wait_phase(sup, manual_clock, victim, PROBATION)

        # death 3 (during probation): flap 2 trips the breaker -- the
        # worker restarts OFF the ring and its tenants stay re-placed
        self.kill_until_dead(sup, cluster, manual_clock, victim)
        assert sup.stats.quarantines == 1
        self.wait_phase(sup, manual_clock, victim, QUARANTINED)
        assert cluster.workers[victim].alive
        assert victim not in cluster.ring
        assert all(w != victim for w in placements(cluster, clients).values())

        # quarantine window passes -> breaker half-opens (still off ring)
        health = sup.worker_health()[victim]
        assert health.breaker == OPEN
        while sup.worker_health()[victim].breaker == OPEN:
            manual_clock.advance(1.0)
            sup.tick()
        assert sup.worker_health()[victim].breaker == HALF_OPEN
        assert victim not in cluster.ring

        # it survives the half-open probe window -> rejoins, counters
        # reset, and placement returns to exactly the original map
        self.wait_phase(sup, manual_clock, victim, SERVING)
        view = sup.worker_health()[victim]
        assert view.breaker == CLOSED
        assert view.flaps == 0
        assert victim in cluster.ring
        assert placements(cluster, clients) == before
        assert sup.stats.rejoins == 1

    def test_death_during_half_open_requarantines(
        self, make_cluster, manual_clock
    ):
        cluster = make_cluster(worker_count=2)
        sup = make_supervisor(cluster, flap_threshold=1)
        sup.tick()
        victim = cluster.ring.worker_ids[0]

        # flap_threshold=1: the first probation death opens the breaker
        self.kill_until_dead(sup, cluster, manual_clock, victim)
        self.wait_phase(sup, manual_clock, victim, PROBATION)
        self.kill_until_dead(sup, cluster, manual_clock, victim)
        self.wait_phase(sup, manual_clock, victim, QUARANTINED)
        while sup.worker_health()[victim].breaker != HALF_OPEN:
            manual_clock.advance(1.0)
            sup.tick()

        # dying during the half-open probe window slams the breaker shut
        quarantines = sup.stats.quarantines
        self.kill_until_dead(sup, cluster, manual_clock, victim)
        self.wait_phase(sup, manual_clock, victim, QUARANTINED)
        assert sup.worker_health()[victim].breaker == OPEN
        assert sup.stats.quarantines == quarantines + 1
        assert victim not in cluster.ring
        assert sup.stats.rejoins == 0


class TestDrainInteraction:
    def test_probe_straddling_a_drain(
        self, serving_context, make_cluster, manual_clock
    ):
        """A drained worker is alive and off the ring: probes during and
        after the drain must not declare it dead or restart it."""
        cluster = make_cluster(worker_count=3)
        tenants, clients, trace = connect_traffic(serving_context, cluster)
        for cid, fr in trace:
            cluster.receive(cid, fr)
        sup = make_supervisor(cluster)
        sup.tick()

        victim = cluster.ring.worker_ids[0]
        cluster.drain_worker(victim)
        assert victim not in cluster.ring
        # probes keep landing across the whole drain window
        sup.run(until=10.0)
        assert sup.stats.deaths == 0
        assert sup.stats.restarts == 0
        view = sup.worker_health()[victim]
        assert view.phase == SERVING and view.missed_probes == 0
        # and the drained worker can still rejoin normally
        cluster.rejoin_worker(victim)
        assert victim in cluster.ring

    def test_double_drain_is_a_clear_error(self, make_cluster):
        cluster = make_cluster(worker_count=2)
        victim = cluster.ring.worker_ids[0]
        cluster.drain_worker(victim)
        with pytest.raises(UnknownWorkerError):
            cluster.drain_worker(victim)
