"""Wire-format-v2 serving: HELLO negotiation, v2 sessions, key upload.

The serving layer's v2 contract, end to end:

* the socket front-door negotiates the wire version at HELLO time --
  a client advertising v2 (``op_arg=2``) gets an acknowledgement and
  v2 responses; a legacy HELLO (``op_arg=0``) sees *byte-identical*
  protocol behavior to before negotiation existed (no ack, v1);
* the router serializes tenant key uploads at the registered version,
  and the stored blobs -- including failover re-uploads to restarted
  workers -- stay in that format;
* per-session response versions coexist on one worker, and the flush
  accounting bills each request at its session's actual wire bytes.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.ckks.serialization import (
    HEADER_BYTES,
    LATEST_VERSION,
    ciphertext_wire_bytes,
    kswitch_key_wire_bytes,
)
from repro.serving import framing
from repro.serving.cluster import AsyncFrontDoor, ServingCluster
from repro.serving.traffic import SyntheticClient, SyntheticTenant, multi_tenant_traffic
from repro.serving.worker import LocalWorkerHandle, WorkerSpec


def _payload_version(frame_bytes: bytes) -> int:
    frame = framing.decode_frame(frame_bytes)
    assert frame.kind == framing.RESPONSE
    return frame.payload[4]  # HEAX header: magic(4) then version byte


@pytest.fixture()
def v2_tenant(serving_context) -> SyntheticTenant:
    return SyntheticTenant(serving_context, seed=777, key_id="t-v2",
                           seed_expandable=True)


class TestClusterV2Sessions:
    def test_v2_session_serves_v2_responses(self, make_cluster, v2_tenant):
        cluster = make_cluster(worker_count=2)
        v2_tenant.register_with(cluster, wire_version=2)
        client = SyntheticClient(v2_tenant, "cv2", seed=1, wire_version=2)
        client.connect_cluster(cluster)
        cluster.receive("cv2", client.request_bytes("square", [0.5]))
        cluster.drain()
        (blob,) = cluster.take_outbox("cv2")
        assert _payload_version(blob) == 2
        rid, vals = v2_tenant.decrypt_response(blob)
        assert abs(vals[0].real - 0.25) < 1e-2

    def test_v1_and_v2_clients_coexist_per_session(
        self, make_cluster, v2_tenant
    ):
        """Same tenant, same worker, different negotiated versions: each
        client's responses come back in its own format."""
        cluster = make_cluster(worker_count=1)
        v2_tenant.register_with(cluster, wire_version=2)
        old = SyntheticClient(v2_tenant, "old", seed=2, wire_version=1)
        new = SyntheticClient(v2_tenant, "new", seed=3, wire_version=2)
        old.connect_cluster(cluster)
        new.connect_cluster(cluster)
        cluster.receive("old", old.request_bytes("square", [1.0]))
        cluster.receive("new", new.request_bytes("square", [1.0]))
        cluster.drain()
        (b_old,) = cluster.take_outbox("old")
        (b_new,) = cluster.take_outbox("new")
        assert _payload_version(b_old) == 1
        assert _payload_version(b_new) == 2
        # identical math, differently shipped: both decrypt to 1.0
        for tenant_blob in (b_old, b_new):
            _, vals = v2_tenant.decrypt_response(tenant_blob)
            assert abs(vals[0].real - 1.0) < 1e-2

    def test_seeded_v2_upload_is_less_than_half_of_v1(
        self, serving_context, v2_tenant
    ):
        """The tenant key registry stores blobs in the requested format;
        seeded v2 more than halves the upload every worker receives."""
        spec = WorkerSpec(params=serving_context.params)

        def sizes(wire_version):
            cluster = ServingCluster(
                lambda wid: LocalWorkerHandle(wid, spec), worker_count=1
            )
            v2_tenant.register_with(cluster, wire_version=wire_version)
            tenant = cluster._tenants[v2_tenant.key_id]
            total = len(tenant.relin_blob) + sum(
                len(b) for b in tenant.galois_blobs.values()
            )
            cluster.stop()
            return total

        assert sizes(2) < sizes(1) / 2

    def test_failover_reupload_stays_v2(self, make_cluster, v2_tenant):
        """A restarted worker's fresh key cache is refilled from the
        stored v2 blobs, and traffic still answers correctly."""
        cluster = make_cluster(worker_count=2)
        v2_tenant.register_with(cluster, wire_version=2)
        client = SyntheticClient(v2_tenant, "cf", seed=4, wire_version=2)
        client.connect_cluster(cluster)
        victim = cluster.client_worker("cf")
        cluster.kill_worker(victim)
        cluster.restart_worker(victim)
        cluster.receive("cf", client.request_bytes("square", [2.0]))
        cluster.drain()
        (blob,) = cluster.take_outbox("cf")
        assert _payload_version(blob) == 2
        _, vals = v2_tenant.decrypt_response(blob)
        assert abs(vals[0].real - 4.0) < 1e-2

    def test_flush_accounting_bills_v2_bytes(
        self, serving_context, make_cluster, v2_tenant
    ):
        """The recorded ScheduledOp must bill the modeled PCIe transfer
        at the session's actual wire bytes -- v2, here."""
        cluster = make_cluster(worker_count=1)
        v2_tenant.register_with(cluster, wire_version=2)
        client = SyntheticClient(v2_tenant, "cb", seed=5, wire_version=2)
        client.connect_cluster(cluster)
        frame = client.request_bytes("double", [1.0])
        assert (
            len(framing.decode_frame(frame).payload)
            == HEADER_BYTES
            + ciphertext_wire_bytes(
                serving_context.n, 2, serving_context.k, version=2,
                moduli=serving_context.basis_at_level(serving_context.k).moduli,
            )
        )
        cluster.receive("cb", frame)
        cluster.drain()
        worker = cluster.workers[cluster.client_worker("cb")]
        (flush,) = worker.core.server.report.flushes
        expected = ciphertext_wire_bytes(
            serving_context.n, 2, serving_context.k, version=2,
            moduli=serving_context.basis_at_level(serving_context.k).moduli,
        )
        assert flush.scheduled.input_bytes == expected
        assert flush.scheduled.output_bytes == expected

    def test_unsupported_version_rejected_at_registration(
        self, make_cluster, v2_tenant
    ):
        cluster = make_cluster(worker_count=1)
        v2_tenant.register_with(cluster, wire_version=2)
        with pytest.raises(ValueError, match="version"):
            cluster.register_client("cx", v2_tenant.key_id, wire_version=9)
        with pytest.raises(ValueError, match="version"):
            cluster.register_tenant("t-bad", wire_version=3)

    def test_reconnect_renegotiates_version(self, make_cluster, v2_tenant):
        cluster = make_cluster(worker_count=1)
        v2_tenant.register_with(cluster, wire_version=2)
        client = SyntheticClient(v2_tenant, "cr", seed=6, wire_version=1)
        client.connect_cluster(cluster)
        cluster.receive("cr", client.request_bytes("square", [1.0]))
        cluster.drain()
        (blob,) = cluster.take_outbox("cr")
        assert _payload_version(blob) == 1
        # the client reconnects speaking v2: same session, new version
        cluster.register_client("cr", v2_tenant.key_id, wire_version=2)
        cluster.receive("cr", client.request_bytes("square", [1.0]))
        cluster.drain()
        (blob,) = cluster.take_outbox("cr")
        assert _payload_version(blob) == 2


class TestFrontDoorNegotiation:
    """HELLO version negotiation over a real socket."""

    def _cluster(self, serving_context):
        spec = WorkerSpec(params=serving_context.params, max_delay_seconds=1e-3)
        cluster = ServingCluster(
            lambda wid: LocalWorkerHandle(wid, spec), worker_count=2
        )
        tenants, clients, trace = multi_tenant_traffic(
            serving_context, tenant_count=1, clients_per_tenant=1,
            requests_per_client=2, wire_version=2, seed_expandable=True,
        )
        for t in tenants:
            t.register_with(cluster, wire_version=2)
        return cluster, clients[0], [fr for _, fr in trace]

    async def _session(self, door, client, frames, hello_version):
        reader, writer = await asyncio.open_connection(door.host, door.port)
        writer.write(
            framing.encode_frame(
                framing.HELLO, 0, client.client_id,
                op=client.tenant.key_id, op_arg=hello_version,
            )
        )
        for fr in frames:
            writer.write(fr)
        await writer.drain()
        decoder = framing.FrameDecoder()
        got = []
        want = len(frames) + (1 if hello_version > 0 else 0)
        while len(got) < want:
            data = await asyncio.wait_for(reader.read(1 << 16), timeout=10)
            if not data:
                break
            got.extend(decoder.feed(data))
        writer.close()
        await writer.wait_closed()
        return got

    def _run(self, serving_context, hello_version):
        cluster, client, frames = self._cluster(serving_context)

        async def main():
            async with AsyncFrontDoor(cluster) as door:
                return await self._session(door, client, frames, hello_version)

        try:
            return asyncio.run(main()), client
        finally:
            cluster.stop()

    def test_v2_hello_acked_and_served_v2(self, serving_context):
        got, client = self._run(serving_context, hello_version=2)
        ack, *responses = got
        assert ack.kind == framing.RESPONSE
        assert ack.op == "hello"
        assert ack.op_arg == 2
        assert len(responses) == 2
        for frame in responses:
            assert frame.kind == framing.RESPONSE
            assert frame.payload[4] == 2

    def test_future_version_negotiated_down(self, serving_context):
        got, _ = self._run(serving_context, hello_version=9)
        ack = got[0]
        assert ack.op == "hello"
        assert ack.op_arg == LATEST_VERSION

    def test_legacy_hello_unchanged(self, serving_context):
        """op_arg=0 keeps the pre-negotiation protocol bit for bit: no
        ack frame, v1 responses."""
        got, _ = self._run(serving_context, hello_version=0)
        assert len(got) == 2
        for frame in got:
            assert frame.kind == framing.RESPONSE
            assert frame.op != "hello"
            assert frame.payload[4] == 1


class TestWireBytesHelpers:
    def test_seeded_galois_upload_matches_formula(self, serving_context):
        tenant = SyntheticTenant(
            serving_context, seed=11, key_id="t-f", seed_expandable=True
        )
        spec = WorkerSpec(params=serving_context.params)
        cluster = ServingCluster(
            lambda wid: LocalWorkerHandle(wid, spec), worker_count=1
        )
        try:
            tenant.register_with(cluster, wire_version=2)
            stored = cluster._tenants[tenant.key_id]
            expected = HEADER_BYTES + kswitch_key_wire_bytes(
                serving_context.n,
                serving_context.k,
                version=2,
                moduli=serving_context.key_basis.moduli,
                seeded=True,
            )
            assert len(stored.relin_blob) == expected
            for blob in stored.galois_blobs.values():
                assert len(blob) == expected
        finally:
            cluster.stop()
