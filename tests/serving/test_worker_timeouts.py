"""Deterministic poll/drain/stats/failover timeout tests.

The ``ProcessWorkerHandle`` wait loops and the front door's
``_settle_client`` used to read ``time.monotonic()`` directly -- the
last wall-clock deadlines in the serving stack (the same class of gap
PR 6 closed for the batcher).  These tests install a
:class:`~repro.serving.clock.ManualClock` and drive each timeout to
expiry by *advancing time by hand*: a 60-second drain timeout fires in
microseconds of real time, and "the worker died while we were waiting"
is a scripted state, not a race.  None of these tests could exist
against the wall clock without minute-long sleeps.
"""

import asyncio

import pytest

from repro.serving.clock import ManualClock
from repro.serving.cluster import AsyncFrontDoor
from repro.serving.worker import ProcessWorkerHandle, WorkerDeadError


class _ScriptedProcess:
    """A stand-in worker process whose liveness follows a script."""

    def __init__(self, alive=True):
        self._alive = alive
        self._script = []

    def script_deaths(self, *alive_sequence):
        """Queue liveness answers; the last one repeats forever."""
        self._script = list(alive_sequence)

    def is_alive(self):
        if self._script:
            self._alive = self._script.pop(0)
        return self._alive


class _SilentConnection:
    """A pipe end that accepts commands and never answers.

    Each ``poll`` advances the manual clock by its timeout (modelling
    the real blocking wait) -- which is exactly what lets a test walk a
    60-second deadline to expiry instantly.
    """

    def __init__(self, clock, min_step=0.01):
        self.clock = clock
        self.min_step = min_step
        self.sent = []

    def send(self, msg):
        self.sent.append(msg)

    def poll(self, timeout=0.0):
        self.clock.advance(max(timeout, self.min_step))
        return False

    def recv(self):  # pragma: no cover - poll never returns True
        raise AssertionError("silent connection never has data")


def _stub_handle(clock, conn=None, alive=True):
    """A ProcessWorkerHandle wired to stubs instead of a spawned process."""
    handle = ProcessWorkerHandle.__new__(ProcessWorkerHandle)
    handle.worker_id = "w0"
    handle.spec = None
    handle._clock = clock
    handle._conn = conn if conn is not None else _SilentConnection(clock)
    handle._proc = _ScriptedProcess(alive)
    handle._response_buffer = {}
    return handle


# ----------------------------------------------------------------------
# drain
# ----------------------------------------------------------------------
def test_drain_times_out_on_manual_clock():
    clock = ManualClock()
    handle = _stub_handle(clock)
    with pytest.raises(TimeoutError, match="drain timed out"):
        handle.drain()
    # the deadline expired on *injected* time, not a real 60s wait
    assert clock.now >= ProcessWorkerHandle.DRAIN_TIMEOUT_SECONDS


def test_drain_surfaces_worker_death_while_waiting():
    clock = ManualClock()
    handle = _stub_handle(clock)
    # alive for the _send liveness check, dead at the first wait check
    handle._proc.script_deaths(True, False)
    with pytest.raises(WorkerDeadError):
        handle.drain()
    # died long before the drain deadline: this is the failover path,
    # not a timeout
    assert clock.now < ProcessWorkerHandle.DRAIN_TIMEOUT_SECONDS


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def test_stats_times_out_on_manual_clock():
    clock = ManualClock()
    handle = _stub_handle(clock)
    with pytest.raises(TimeoutError, match="stats timed out"):
        handle.stats()
    assert clock.now >= ProcessWorkerHandle.STATS_TIMEOUT_SECONDS


def test_stats_surfaces_worker_death_while_waiting():
    clock = ManualClock()
    handle = _stub_handle(clock)
    handle._proc.script_deaths(True, False)
    with pytest.raises(WorkerDeadError):
        handle.stats()


# ----------------------------------------------------------------------
# poll_responses
# ----------------------------------------------------------------------
def test_poll_responses_deadline_yields_buffered_frames():
    """A wedged worker must not hang the router's poll: the deadline
    expires on the injected clock and whatever was already buffered is
    returned (the router owns surfacing the loss)."""
    clock = ManualClock()
    handle = _stub_handle(clock)
    handle._response_buffer = {"client-a": [b"frame-1", b"frame-2"]}
    out = handle.poll_responses()
    assert out == {"client-a": [b"frame-1", b"frame-2"]}
    assert handle._response_buffer == {}
    assert clock.now >= ProcessWorkerHandle.POLL_TIMEOUT_SECONDS


def test_poll_responses_dead_worker_returns_buffer_without_waiting():
    clock = ManualClock()
    handle = _stub_handle(clock, alive=False)
    handle._response_buffer = {"client-a": [b"frame-1"]}
    assert handle.poll_responses() == {"client-a": [b"frame-1"]}
    # no deadline wait happened at all: the clock never advanced
    assert clock.now == 0.0


# ----------------------------------------------------------------------
# front-door settle window
# ----------------------------------------------------------------------
class _StallingCluster:
    """A cluster stub with one request that never completes: each pump
    advances manual time by one second, so the settle window expires
    after exactly ``timeout`` pumps."""

    def __init__(self):
        self.clock = ManualClock()
        self.pumps = 0

    def pump(self, now=None):
        self.pumps += 1
        self.clock.advance(1.0)
        return 0

    def client_inflight(self, client_id):
        return 1  # never settles

    def take_outbox(self, client_id):  # pragma: no cover - no writers
        return []


class _NullWriter:
    def write(self, data):  # pragma: no cover - nothing is written
        pass

    async def drain(self):
        pass


def test_settle_client_deadline_runs_on_cluster_clock():
    """Regression for the raw ``time.monotonic()`` settle loop: with the
    cluster's manual clock in charge, a connection whose request never
    answers settles out after ``timeout`` *injected* seconds -- the test
    completes instantly instead of blocking for ten real seconds."""
    cluster = _StallingCluster()
    front = AsyncFrontDoor(cluster, pump_interval=0.0)

    async def settle():
        await front._settle_client("client-a", _NullWriter(), timeout=10.0)

    asyncio.run(settle())
    # deadline = clock + 10s, one pump per loop turn advancing 1s each
    assert cluster.pumps == pytest.approx(10, abs=1)
    assert cluster.clock.now >= 10.0
