"""End-to-end reliability: frame integrity, idempotent retry, deadlines.

The acceptance bar of the reliability layer, as executable checks:

* **Frame integrity** -- every single-byte corruption of a v2 frame is
  caught by the CRC (an exhaustive sweep over byte offsets), corruption
  mid-stream never poisons neighbouring frames, and a client recovers
  by resending the identical bytes.
* **Idempotent retry** -- a retried request is never executed twice:
  a retry of a completed request replays the cached response
  *bit-identically*, a retry of an in-flight request is refused with a
  retryable error, and neither counts as a new submission.
* **Deadline propagation** -- client-stamped absolute deadlines are
  enforced at router admission, pull batch flushes forward, and answer
  a request expiring *exactly* at the flush instant with a DEADLINE
  error rather than serving it late.
* **Conservation** -- in every scenario, including the seeded chaos
  run mixing kills, restarts, corruption and retries:
  ``completed + shed + failed_over + expired == submitted``.
"""

from __future__ import annotations

import asyncio
import random
import struct

import pytest

from repro.serving import framing
from repro.serving.cluster import (
    AsyncFrontDoor,
    HashRing,
    ServingCluster,
    UnknownWorkerError,
)
from repro.serving.clock import ExponentialBackoff, ManualClock
from repro.serving.server import EncryptedComputeServer
from repro.serving.session import UnknownClientError
from repro.serving.supervisor import HeartbeatSupervisor
from repro.serving.traffic import ResilientClient, SyntheticClient, SyntheticTenant
from repro.serving.worker import LocalWorkerHandle, WorkerSpec


def conservation(report):
    return (
        report.completed
        + report.shed_requests
        + report.failed_over_requests
        + report.expired_requests
    ) == report.submitted


def settle(cluster, clock, steps=4, dt=0.01):
    """Pump until pending lanes have aged past any flush deadline."""
    for _ in range(steps):
        cluster.pump()
        clock.advance(dt)
    cluster.drain()


class FlakyTransport:
    """Wraps a cluster, corrupting chosen ``receive`` calls by one byte.

    The flipped byte sits inside the frame magic, so both v1 and v2
    decoders reject the frame; everything else delegates to the real
    cluster, which is what lets a :class:`ResilientClient` run its
    normal protocol over a corrupting wire.
    """

    def __init__(self, cluster, corrupt_calls=()):
        self._cluster = cluster
        self._corrupt_calls = set(corrupt_calls)
        self.calls = 0
        self.corruptions = 0

    def receive(self, client_id, data):
        self.calls += 1
        if self.calls in self._corrupt_calls:
            self.corruptions += 1
            mangled = bytearray(data)
            mangled[5] ^= 0xFF  # inside the magic, after the length prefix
            self._cluster.receive(client_id, bytes(mangled))
            return
        self._cluster.receive(client_id, data)

    def __getattr__(self, name):
        return getattr(self._cluster, name)


# ----------------------------------------------------------------------
# frame integrity (CRC)
# ----------------------------------------------------------------------
class TestFrameIntegrity:
    def _v2_frame(self):
        return framing.encode_frame(
            framing.REQUEST,
            7,
            "client-crc",
            op="square",
            op_arg=3,
            payload=bytes(range(64)),
            deadline=1.5,
            frame_version=framing.FRAME_V2,
        )

    def test_every_single_byte_corruption_is_caught(self):
        """Exhaustive sweep: flip each byte past the length prefix; the
        CRC (or a header check) must reject every one of them."""
        frame = self._v2_frame()
        for offset in range(4, len(frame)):
            mangled = bytearray(frame)
            mangled[offset] ^= 0xFF
            with pytest.raises(framing.StreamProtocolError):
                framing.FrameDecoder().feed(bytes(mangled))

    def test_length_prefix_corruption_never_yields_a_frame(self):
        """Corrupting the length prefix may make the decoder wait for
        bytes that never come -- fine -- but it must never hand back a
        decoded frame."""
        frame = self._v2_frame()
        for offset in range(4):
            mangled = bytearray(frame)
            mangled[offset] ^= 0xFF
            decoder = framing.FrameDecoder()
            try:
                frames = decoder.feed(bytes(mangled))
            except framing.StreamProtocolError:
                continue
            assert frames == []

    def test_corruption_mid_stream_spares_neighbours(
        self, make_cluster, tenant, make_client, manual_clock
    ):
        """frame1 | corrupt | frame3: frame1 is admitted, the stream
        errors, and a fresh resend of frame3 goes through -- the decoder
        was reset, not left wedged on the corrupt bytes."""
        cluster = make_cluster(worker_count=2)
        tenant.register_with(cluster)
        client = make_client()
        client.connect_cluster(cluster)
        cid = client.client_id

        good1 = client.request_bytes("square", [1.0, 2.0])
        bad = bytearray(client.request_bytes("square", [3.0]))
        bad[5] ^= 0xFF
        good3 = client.request_bytes("double", [4.0])
        with pytest.raises(framing.StreamProtocolError):
            cluster.receive(cid, good1 + bytes(bad) + good3)
        assert cluster.report.submitted == 1  # only frame1 got through

        cluster.receive(cid, good3)  # identical-bytes resend, clean wire
        settle(cluster, manual_clock)
        blobs = cluster.take_outbox(cid)
        assert len(blobs) == 2
        assert {framing.decode_frame(b).kind for b in blobs} == {framing.RESPONSE}
        assert conservation(cluster.report)

    def test_resilient_client_resends_through_corruption(
        self, make_cluster, tenant, manual_clock
    ):
        """The client-side half: a CRC-corrupted send raises at the
        transport, and the client resends the identical bytes once."""
        cluster = make_cluster(worker_count=2)
        tenant.register_with(cluster)
        client = SyntheticClient(tenant, "flaky-c", seed=5)
        wire = FlakyTransport(cluster, corrupt_calls={2})
        rc = ResilientClient(client, wire)
        rc.connect()

        rc.submit("square", [1.0, 2.0])  # call 1: clean
        rid = rc.submit("double", [3.0])  # call 2: corrupted, resent as 3
        assert wire.corruptions == 1
        assert rc.corruption_resends == 1

        settle(cluster, manual_clock)
        rc.poll()
        assert rc.outstanding == 0
        assert not rc.failures
        assert rid in rc.responses
        assert cluster.report.submitted == 2  # the corrupt copy never counted
        assert conservation(cluster.report)


# ----------------------------------------------------------------------
# idempotent retry
# ----------------------------------------------------------------------
class TestIdempotentRetry:
    def test_retry_of_completed_request_replays_bit_identically(
        self, make_cluster, tenant, make_client, manual_clock
    ):
        cluster = make_cluster(worker_count=2)
        tenant.register_with(cluster)
        client = make_client()
        worker_id = client.connect_cluster(cluster)
        cid = client.client_id

        data = client.request_bytes("square", [1.5, 2.5])
        cluster.receive(cid, data)
        settle(cluster, manual_clock)
        (original,) = cluster.take_outbox(cid)
        assert framing.decode_frame(original).kind == framing.RESPONSE

        # the client never saw the response (say its link dropped) and
        # retries the *exact same bytes*
        cluster.receive(cid, data)
        (replayed,) = cluster.take_outbox(cid)
        assert replayed == original  # bit-identical replay
        assert cluster.report.dedup_hits == 1
        assert cluster.report.submitted == 1  # retry is not a submission
        # and the worker executed it exactly once
        assert cluster.worker_stats()[worker_id].completed == 1
        assert conservation(cluster.report)

    def test_retry_of_inflight_request_is_refused_retryably(
        self, make_cluster, tenant, make_client, manual_clock
    ):
        cluster = make_cluster(worker_count=1)
        tenant.register_with(cluster)
        client = make_client()
        client.connect_cluster(cluster)
        cid = client.client_id

        data = client.request_bytes("square", [1.0])
        cluster.receive(cid, data)
        cluster.receive(cid, data)  # impatient duplicate, original pending
        (refusal,) = cluster.take_outbox(cid)
        frame = framing.decode_frame(refusal)
        assert frame.kind == framing.ERROR
        assert framing.is_retryable_error(frame)
        assert cluster.report.duplicate_inflight == 1
        assert cluster.report.submitted == 1

        settle(cluster, manual_clock)
        (response,) = cluster.take_outbox(cid)
        assert framing.decode_frame(response).kind == framing.RESPONSE
        assert conservation(cluster.report)

    def test_dedup_cache_is_bounded_lru(
        self, make_cluster, tenant, make_client, manual_clock, monkeypatch
    ):
        """Beyond the window a retry re-executes (safe: ops are pure),
        and recently-replayed entries are the ones kept."""
        monkeypatch.setattr("repro.serving.cluster.DEDUP_CACHE_SIZE", 2)
        cluster = make_cluster(worker_count=1)
        tenant.register_with(cluster)
        client = make_client()
        client.connect_cluster(cluster)
        cid = client.client_id

        sent = []
        for i in range(3):
            data = client.request_bytes("square", [float(i + 1)])
            sent.append(data)
            cluster.receive(cid, data)
        settle(cluster, manual_clock)
        assert len(cluster.take_outbox(cid)) == 3
        assert cluster.report.submitted == 3

        # request 0 was evicted (window is 2): its retry re-executes
        cluster.receive(cid, sent[0])
        settle(cluster, manual_clock)
        assert cluster.report.dedup_hits == 0
        assert cluster.report.submitted == 4
        # request 2 is still cached: replay, no execution
        cluster.receive(cid, sent[2])
        assert cluster.report.dedup_hits == 1
        assert cluster.report.submitted == 4
        assert conservation(cluster.report)


# ----------------------------------------------------------------------
# deadline propagation
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_at_router_admission(
        self, make_cluster, tenant, make_client, manual_clock
    ):
        cluster = make_cluster(worker_count=2)
        tenant.register_with(cluster)
        client = make_client()
        client.connect_cluster(cluster)
        manual_clock.advance(1.0)

        cluster.receive(
            client.client_id,
            client.request_bytes("square", [1.0], deadline=0.5),
        )
        (blob,) = cluster.take_outbox(client.client_id)
        frame = framing.decode_frame(blob)
        assert frame.kind == framing.ERROR
        assert framing.error_class(frame) == framing.ERR_DEADLINE
        assert not framing.is_retryable_error(frame)
        assert cluster.report.expired_requests == 1
        assert cluster.report.submitted == 1
        assert conservation(cluster.report)

    def test_expired_at_worker_admission(self, serving_context, manual_clock):
        """The worker-side admission check, exercised directly: a frame
        whose deadline passed in transit is expired before its payload
        is even decoded."""
        server = EncryptedComputeServer(serving_context, clock=manual_clock)
        tenant = SyntheticTenant(serving_context, seed=11)
        client = SyntheticClient(tenant, "late", seed=1)
        client.connect(server)
        data = client.request_bytes("square", [1.0], deadline=0.5)
        manual_clock.advance(1.0)  # ...slow network...
        server.receive("late", data)
        assert server.report.expired_requests == 1
        (blob,) = server.collect_outboxes()["late"]
        frame = framing.decode_frame(blob)
        assert framing.error_class(frame) == framing.ERR_DEADLINE

    def test_deadline_expiring_exactly_at_flush_time(
        self, make_cluster, tenant, make_client, manual_clock
    ):
        """The deadline both pulls the flush forward (0.001 < the 0.002
        batcher delay) and, being exactly `now` at that flush, expires
        the request -- the boundary is answered DEADLINE, never served
        late."""
        cluster = make_cluster(worker_count=1)
        tenant.register_with(cluster)
        client = make_client()
        client.connect_cluster(cluster)
        cid = client.client_id

        cluster.receive(cid, client.request_bytes("square", [1.0], deadline=0.001))
        cluster.pump()  # queue -> lane at t=0; lane not yet due
        assert cluster.take_outbox(cid) == []
        manual_clock.advance(0.001)  # now == deadline, < max_delay
        cluster.pump()
        (blob,) = cluster.take_outbox(cid)
        frame = framing.decode_frame(blob)
        assert frame.kind == framing.ERROR
        assert framing.error_class(frame) == framing.ERR_DEADLINE
        assert cluster.report.expired_requests == 1
        assert conservation(cluster.report)

    def test_mixed_lane_expires_only_the_dead_member(
        self, make_cluster, tenant, make_client, manual_clock
    ):
        """Two requests share a batch lane; one's deadline passes while
        batching.  The expired one gets DEADLINE, the survivor executes
        in the (now smaller) flush -- pulled forward by the deadline."""
        cluster = make_cluster(worker_count=1)
        tenant.register_with(cluster)
        hurried, relaxed = make_client(), make_client()
        worker_id = hurried.connect_cluster(cluster)
        relaxed.connect_cluster(cluster)

        cluster.receive(
            hurried.client_id,
            hurried.request_bytes("square", [1.0, 2.0], deadline=0.001),
        )
        cluster.receive(
            relaxed.client_id, relaxed.request_bytes("square", [3.0, 4.0])
        )
        cluster.pump()  # both enter the same lane
        manual_clock.advance(0.001)  # hurried's deadline, < batcher delay
        cluster.pump()

        (blob,) = cluster.take_outbox(hurried.client_id)
        assert framing.error_class(framing.decode_frame(blob)) == framing.ERR_DEADLINE
        (blob,) = cluster.take_outbox(relaxed.client_id)
        rid, values = tenant.decrypt_response(blob)
        assert values[0] == pytest.approx(9.0, rel=1e-3, abs=1e-3)
        stats = cluster.worker_stats()[worker_id]
        assert stats.expired == 1
        assert stats.completed == 1
        report = cluster.report
        assert report.expired_requests == 1 and report.completed == 1
        assert conservation(report)


# ----------------------------------------------------------------------
# the resilient client's retry policy
# ----------------------------------------------------------------------
class TestResilientClient:
    def _backoff(self):
        return ExponentialBackoff(base=0.05, factor=2.0, jitter=0.0, seed=0)

    def test_shed_request_is_retried_to_success(
        self, make_cluster, tenant, manual_clock
    ):
        cluster = make_cluster(worker_count=1, max_inflight=1)
        tenant.register_with(cluster)
        client = SyntheticClient(tenant, "rc-ok", seed=3)
        rc = ResilientClient(client, cluster, backoff=self._backoff())
        rc.connect()

        first = rc.submit("double", [1.0])
        shed = rc.submit("double", [2.0])  # over max_inflight: shed
        assert cluster.report.shed_requests == 1
        rc.poll()  # classifies the shed as retryable, schedules resend
        assert shed in rc._retry_at and not rc.failures

        settle(cluster, manual_clock)  # completes `first`, frees capacity
        rc.poll()
        assert first in rc.responses
        manual_clock.advance(0.05)  # cross the backoff delay
        rc.poll()  # resend happens here
        assert rc.retries_sent == 1
        settle(cluster, manual_clock)
        rc.poll()
        assert rc.outstanding == 0
        assert shed in rc.responses and not rc.failures
        report = cluster.report
        assert report.shed_requests == 1 and report.completed == 2
        assert conservation(report)

    def test_fatal_error_is_terminal(self, make_cluster, tenant, manual_clock):
        cluster = make_cluster(worker_count=1)
        tenant.register_with(cluster)
        client = SyntheticClient(tenant, "rc-fatal", seed=4)
        rc = ResilientClient(client, cluster, backoff=self._backoff())
        rc.connect()
        rid = rc.submit("transmogrify", [1.0])  # op nobody implements
        settle(cluster, manual_clock)
        rc.poll()
        assert rc.retries_sent == 0
        assert rc.failures[rid].startswith(framing.ERR_FATAL)
        assert rc.outstanding == 0

    def test_deadline_error_is_terminal(self, make_cluster, tenant, manual_clock):
        cluster = make_cluster(worker_count=1)
        tenant.register_with(cluster)
        client = SyntheticClient(tenant, "rc-late", seed=5)
        rc = ResilientClient(client, cluster, backoff=self._backoff())
        rc.connect()
        manual_clock.advance(1.0)
        rid = rc.submit("double", [1.0], deadline=0.5)
        rc.poll()
        assert rc.retries_sent == 0
        assert rc.failures[rid].startswith(framing.ERR_DEADLINE)
        assert conservation(cluster.report)

    def test_retries_exhaust_into_failure(self, make_cluster, tenant, manual_clock):
        """max_inflight=0 sheds everything: after max_attempts retries
        the client gives up and records the failure."""
        cluster = make_cluster(worker_count=1, max_inflight=0)
        tenant.register_with(cluster)
        client = SyntheticClient(tenant, "rc-doomed", seed=6)
        rc = ResilientClient(client, cluster, max_attempts=2, backoff=self._backoff())
        rc.connect()
        rid = rc.submit("double", [1.0])
        for _ in range(6):
            manual_clock.advance(0.5)  # past any backoff delay
            rc.poll()
        assert rc.retries_sent == 2
        assert rc.failures[rid].startswith(framing.ERR_RETRYABLE)
        assert rc.outstanding == 0
        report = cluster.report
        assert report.submitted == report.shed_requests == 3
        assert conservation(report)


# ----------------------------------------------------------------------
# seeded chaos: kills, restarts, corruption, retries, deadlines
# ----------------------------------------------------------------------
class TestChaos:
    def test_seeded_chaos_conserves_and_recovers(
        self, serving_context, make_cluster, manual_clock
    ):
        """A deterministic storm: workers crash mid-traffic (the
        supervisor detects and restarts them), the wire corrupts chosen
        sends, some requests carry tight deadlines, and every client
        retries through it.  At the end every request is settled, the
        books balance, and every response decrypts to the right value."""
        rng = random.Random(20200807)
        cluster = make_cluster(worker_count=3)
        sup = HeartbeatSupervisor(
            cluster,
            probe_interval=0.02,
            miss_threshold=2,
            probation_window=0.2,
            quarantine_window=0.5,
            flap_threshold=3,
            backoff_base=0.05,
            backoff_factor=2.0,
            backoff_jitter=0.1,
            seed=42,
        )
        tenants = [
            SyntheticTenant(serving_context, seed=500 + 7 * t, key_id=f"chaos-t{t}")
            for t in range(3)
        ]
        for t in tenants:
            t.register_with(cluster)
        wire = FlakyTransport(cluster, corrupt_calls={5, 19, 33, 47})
        rcs = []
        for t in tenants:
            client = SyntheticClient(t, f"{t.key_id}-c0", seed=900 + len(rcs))
            rc = ResilientClient(
                client,
                wire,
                max_attempts=8,
                backoff=ExponentialBackoff(base=0.02, jitter=0.0, seed=len(rcs)),
            )
            rc.connect()
            rcs.append(rc)

        expect = {}  # (client_id, request_id) -> expected slot-0 value
        kill_steps = {8, 20, 32}
        for step in range(40):
            rc = rcs[step % len(rcs)]
            v = 0.25 + (step % 7) * 0.125
            if step % 3 == 0:
                op, expected = "square", v * v
            else:
                op, expected = "double", 2 * v
            deadline = (
                manual_clock.now + 0.001 if step % 10 == 9 else 0.0
            )  # every 10th request is nearly dead on arrival
            rid = rc.submit(op, [v], deadline=deadline)
            expect[(rc.client.client_id, rid)] = expected

            if step in kill_steps and len(cluster.ring) >= 2:
                victim = rng.choice(cluster.ring.worker_ids)
                cluster.workers[victim].kill()
            manual_clock.advance(0.02)
            cluster.pump()
            sup.tick()
            for r in rcs:
                r.poll()

        # let the storm settle: supervisor restarts what it must, the
        # clients retry what they must
        for _ in range(400):
            if all(r.outstanding == 0 for r in rcs):
                break
            manual_clock.advance(0.02)
            cluster.pump()
            sup.tick()
            for r in rcs:
                r.poll()
        assert all(r.outstanding == 0 for r in rcs)

        # the chaos actually happened
        assert sup.stats.deaths >= 1
        assert sup.stats.restarts >= 1
        assert wire.corruptions >= 1
        assert sum(r.retries_sent for r in rcs) >= 1
        assert cluster.report.expired_requests >= 1

        # conservation across kills, sheds, retries and expiries
        assert conservation(cluster.report)
        assert len(cluster.ring) == 3  # everyone restarted and rejoined

        # every settled answer is correct; failures are only deadline
        # expiries (nothing vanished, nothing failed fatally)
        for rc in rcs:
            tenant = rc.client.tenant
            for rid, blob in rc.responses.items():
                got_rid, values = tenant.decrypt_response(blob)
                assert got_rid == rid
                want = expect[(rc.client.client_id, rid)]
                assert values[0] == pytest.approx(want, rel=1e-3, abs=1e-3)
            for rid, why in rc.failures.items():
                assert why.startswith(framing.ERR_DEADLINE), why


# ----------------------------------------------------------------------
# regression: unknown ids are loud errors, not silent defaults
# ----------------------------------------------------------------------
class TestUnknownIdsAreLoud:
    def test_take_outbox_unknown_client(self, make_cluster):
        cluster = make_cluster(worker_count=1)
        with pytest.raises(UnknownClientError):
            cluster.take_outbox("never-registered")

    def test_client_inflight_unknown_client(self, make_cluster):
        cluster = make_cluster(worker_count=1)
        with pytest.raises(UnknownClientError):
            cluster.client_inflight("never-registered")

    def test_hash_ring_remove_absent_worker(self):
        ring = HashRing()
        ring.add("w0")
        with pytest.raises(UnknownWorkerError):
            ring.remove("w1")
        ring.remove("w0")
        with pytest.raises(UnknownWorkerError):
            ring.remove("w0")  # double remove is just as loud


# ----------------------------------------------------------------------
# frame-protocol negotiation at HELLO (socket layer)
# ----------------------------------------------------------------------
def envelope_versions(buf: bytes):
    """The frame-protocol version byte of each frame in a raw stream."""
    versions, pos = [], 0
    while pos < len(buf):
        (length,) = struct.unpack_from("<I", buf, pos)
        versions.append(buf[pos + 8])  # after length prefix + magic
        pos += 4 + length
    return versions


class TestFrameProtocolNegotiation:
    def _cluster(self, serving_context):
        spec = WorkerSpec(params=serving_context.params, max_delay_seconds=1e-3)
        cluster = ServingCluster(
            lambda wid: LocalWorkerHandle(wid, spec), worker_count=2
        )
        tenant = SyntheticTenant(serving_context, seed=77, key_id="fp-t")
        tenant.register_with(cluster)
        client = SyntheticClient(tenant, "fp-c", seed=1)
        return cluster, client

    def _run(self, serving_context, hello_payload):
        cluster, client = self._cluster(serving_context)

        async def main():
            async with AsyncFrontDoor(cluster) as door:
                reader, writer = await asyncio.open_connection(door.host, door.port)
                writer.write(
                    framing.encode_frame(
                        framing.HELLO, 0, client.client_id,
                        op=client.tenant.key_id, payload=hello_payload,
                    )
                )
                writer.write(client.request_bytes("square", [2.0]))
                await writer.drain()
                decoder = framing.FrameDecoder()
                got, raw = [], b""
                want = 1 + (1 if hello_payload else 0)
                while len(got) < want:
                    data = await asyncio.wait_for(reader.read(1 << 16), timeout=10)
                    if not data:
                        break
                    raw += data
                    got.extend(decoder.feed(data))
                writer.close()
                await writer.wait_closed()
                return got, raw

        try:
            return asyncio.run(main())
        finally:
            cluster.stop()

    def test_v2_frames_negotiated_and_used(self, serving_context):
        (ack, response), raw = self._run(serving_context, hello_payload=bytes([2]))
        assert ack.kind == framing.RESPONSE and ack.op == "hello"
        assert ack.payload == bytes([framing.FRAME_V2])
        assert response.kind == framing.RESPONSE
        # both the ack and the response ride the negotiated v2 envelope
        assert envelope_versions(raw) == [framing.FRAME_V2, framing.FRAME_V2]

    def test_future_frame_version_negotiated_down(self, serving_context):
        (ack, _), _ = self._run(serving_context, hello_payload=bytes([9]))
        assert ack.payload == bytes([framing.LATEST_FRAME_VERSION])

    def test_legacy_hello_stays_v1(self, serving_context):
        (response,), raw = self._run(serving_context, hello_payload=b"")
        assert response.op != "hello"
        assert response.kind == framing.RESPONSE
        assert envelope_versions(raw) == [framing.FRAME_VERSION]
