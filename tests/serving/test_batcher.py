"""Homogeneity grouping and size/deadline flush behavior.

The batcher only reads shape metadata off a request's ciphertext, so
these tests drive it with lightweight stand-ins and a manual clock --
the full stack (real ciphertexts, real execution) is covered in
``test_server.py``.
"""

import time
from types import SimpleNamespace

import pytest

from repro.serving.batcher import DynamicBatcher, homogeneity_key
from repro.serving.clock import ManualClock
from repro.serving.queue import PendingRequest
from repro.serving.session import ClientSession


def make_request(
    op="square",
    op_arg=0,
    key_id="tenant",
    n=64,
    size=2,
    levels=3,
    scale=2.0**28,
    is_ntt=True,
    now=0.0,
    key=None,
    digest=b"",
):
    ct = SimpleNamespace(n=n, size=size, level_count=levels, scale=scale, is_ntt=is_ntt)
    session = ClientSession("client", key_id)
    return PendingRequest(session, 0, op, op_arg, ct, now, key, digest)


class TestHomogeneityKey:
    def test_same_shape_same_lane(self):
        assert homogeneity_key(make_request()) == homogeneity_key(make_request())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"op": "rescale"},
            {"op_arg": 1, "op": "rotate"},
            {"n": 128},
            {"size": 3},
            {"levels": 2},
            {"scale": 2.0**30},
            {"is_ntt": False},
        ],
    )
    def test_shape_differences_split_lanes(self, kwargs):
        assert homogeneity_key(make_request(**kwargs)) != homogeneity_key(
            make_request()
        )

    def test_keyed_op_separates_tenants(self):
        a = make_request(op="square", key_id="tenant-a")
        b = make_request(op="square", key_id="tenant-b")
        assert homogeneity_key(a) != homogeneity_key(b)

    def test_keyless_op_batches_across_tenants(self):
        a = make_request(op="double", key_id="tenant-a")
        b = make_request(op="double", key_id="tenant-b")
        assert homogeneity_key(a) == homogeneity_key(b)


class TestFlushPolicy:
    def test_flush_on_max_batch_size(self):
        batcher = DynamicBatcher(max_batch_size=3, max_delay_seconds=10.0)
        assert batcher.add(make_request(), now=0.0) is None
        assert batcher.add(make_request(), now=0.0) is None
        group = batcher.add(make_request(), now=0.0)
        assert group is not None and len(group) == 3
        assert batcher.pending_count == 0

    def test_flush_on_deadline(self):
        batcher = DynamicBatcher(max_batch_size=8, max_delay_seconds=1.0)
        batcher.add(make_request(), now=0.0)
        batcher.add(make_request(), now=0.5)
        assert batcher.due(now=0.9) == []
        (group,) = batcher.due(now=1.0)  # deadline counts from lane opening
        assert len(group) == 2
        assert batcher.pending_count == 0

    def test_deadline_is_per_lane(self):
        batcher = DynamicBatcher(max_batch_size=8, max_delay_seconds=1.0)
        batcher.add(make_request(op="square"), now=0.0)
        batcher.add(make_request(op="rescale"), now=0.8)
        due = batcher.due(now=1.1)
        assert [g.op for g in due] == ["square"]
        assert batcher.pending_count == 1

    def test_singleton_lane_flushes_on_deadline(self):
        batcher = DynamicBatcher(max_batch_size=8, max_delay_seconds=0.0)
        batcher.add(make_request(), now=5.0)
        (group,) = batcher.due(now=5.0)
        assert len(group) == 1

    def test_flush_all_drains_every_lane(self):
        batcher = DynamicBatcher(max_batch_size=8, max_delay_seconds=100.0)
        batcher.add(make_request(op="square"), now=0.0)
        batcher.add(make_request(op="rescale"), now=0.0)
        batcher.add(make_request(op="rescale"), now=0.0)
        groups = batcher.flush_all()
        assert sorted(len(g) for g in groups) == [1, 2]
        assert batcher.pending_count == 0 and batcher.open_lanes == 0

    def test_heterogeneous_stream_forms_separate_full_lanes(self):
        batcher = DynamicBatcher(max_batch_size=2, max_delay_seconds=10.0)
        flushed = []
        for i in range(4):
            op = "square" if i % 2 == 0 else "rescale"
            group = batcher.add(make_request(op=op), now=0.0)
            if group:
                flushed.append(group.op)
        assert sorted(flushed) == ["rescale", "square"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_delay_seconds=-1.0)


class TestInjectableClock:
    """The batcher owns its clock: callers that pass no ``now`` still get
    deterministic deadlines when a manual clock is installed, which is
    how the cluster test layer controls every flush in every worker."""

    def test_default_clock_is_wall_time(self):
        assert DynamicBatcher().clock is time.monotonic

    def test_add_and_due_read_the_owned_clock(self):
        clock = ManualClock()
        batcher = DynamicBatcher(
            max_batch_size=8, max_delay_seconds=1.0, clock=clock
        )
        batcher.add(make_request())  # no explicit now: lane opens at 0.0
        clock.advance(0.9)
        assert batcher.due() == []
        clock.advance(0.1)
        (group,) = batcher.due()
        assert len(group) == 1

    def test_explicit_now_overrides_the_clock(self):
        clock = ManualClock(start=100.0)
        batcher = DynamicBatcher(
            max_batch_size=8, max_delay_seconds=1.0, clock=clock
        )
        batcher.add(make_request(), now=0.0)
        # the owned clock says 100.0, far past the deadline -- but the
        # caller's now wins
        assert batcher.due(now=0.5) == []
        (group,) = batcher.due(now=1.0)
        assert len(group) == 1

    def test_deadline_straddle_is_reproducible(self):
        """Two admissions straddling a deadline resolve identically on
        every run -- the scenario wall-clock batchers made racy."""
        for _ in range(3):
            clock = ManualClock()
            batcher = DynamicBatcher(
                max_batch_size=8, max_delay_seconds=1.0, clock=clock
            )
            batcher.add(make_request())
            clock.advance(0.999999)
            batcher.add(make_request())  # lands just inside the deadline
            assert batcher.due() == []
            clock.advance(0.000001)
            (group,) = batcher.due()
            assert len(group) == 2  # both flush with the lane, every run


class TestKeyMaterialIdentity:
    """Keyed lanes bind to the key object captured on the request at
    admission, not the key_id label (and not the session's current key)."""

    def test_same_key_id_different_relin_keys_split_lanes(self):
        # claims the same label, carries different key material
        a = make_request(op="square", key_id="shared", key=object())
        b = make_request(op="square", key_id="shared", key=object())
        assert homogeneity_key(a) != homogeneity_key(b)

    def test_shared_key_objects_share_lane(self):
        relin = object()
        a = make_request(op="square", key_id="shared", key=relin)
        b = make_request(op="square", key_id="shared", key=relin)
        assert homogeneity_key(a) == homogeneity_key(b)

    def test_galois_ops_bind_to_captured_key_set(self):
        keys = object()
        a = make_request(op="rotate", op_arg=1, key_id="shared", key=keys)
        b = make_request(op="rotate", op_arg=1, key_id="shared", key=object())
        assert homogeneity_key(a) != homogeneity_key(b)

    def test_session_key_swap_does_not_move_pending_request(self):
        """The lane follows the captured key even if the session mutates."""
        captured = object()
        a = make_request(op="square", key_id="shared", key=captured)
        lane_before = homogeneity_key(a)
        a.session.relin_key = object()  # key rotation while pending
        assert homogeneity_key(a) == lane_before


class TestHoistLanes:
    """Same-ciphertext rotations migrate to a digest-keyed hoist lane."""

    def _keys(self):
        return object()

    def test_same_digest_different_steps_form_hoist_lane(self):
        batcher = DynamicBatcher(max_batch_size=8, max_delay_seconds=100.0)
        keys = self._keys()
        batcher.add(
            make_request(op="rotate", op_arg=1, key=keys, digest=b"ct-a"), now=0.0
        )
        batcher.add(
            make_request(op="rotate", op_arg=2, key=keys, digest=b"ct-a"), now=0.0
        )
        (group,) = batcher.flush_all()
        assert group.hoisted and len(group) == 2
        assert sorted(r.op_arg for r in group.requests) == [1, 2]

    def test_different_digests_stay_step_keyed(self):
        batcher = DynamicBatcher(max_batch_size=8, max_delay_seconds=100.0)
        keys = self._keys()
        batcher.add(
            make_request(op="rotate", op_arg=1, key=keys, digest=b"ct-a"), now=0.0
        )
        batcher.add(
            make_request(op="rotate", op_arg=1, key=keys, digest=b"ct-b"), now=0.0
        )
        (group,) = batcher.flush_all()
        assert not group.hoisted and len(group) == 2  # batched by step

    def test_extraction_leaves_other_lane_mates_behind(self):
        batcher = DynamicBatcher(max_batch_size=8, max_delay_seconds=100.0)
        keys = self._keys()
        # two step-1 rotations of different ciphertexts share a lane...
        batcher.add(
            make_request(op="rotate", op_arg=1, key=keys, digest=b"ct-a"), now=0.0
        )
        batcher.add(
            make_request(op="rotate", op_arg=1, key=keys, digest=b"ct-b"), now=0.0
        )
        # ...then ct-a shows up again with another step: ct-a hoists out
        batcher.add(
            make_request(op="rotate", op_arg=2, key=keys, digest=b"ct-a"), now=0.0
        )
        groups = sorted(batcher.flush_all(), key=len)
        assert [len(g) for g in groups] == [1, 2]
        assert not groups[0].hoisted and groups[0].requests[0].payload_digest == b"ct-b"
        assert groups[1].hoisted
        assert {r.payload_digest for r in groups[1].requests} == {b"ct-a"}

    def test_hoist_lane_keeps_earliest_deadline(self):
        batcher = DynamicBatcher(max_batch_size=8, max_delay_seconds=1.0)
        keys = self._keys()
        batcher.add(
            make_request(op="rotate", op_arg=1, key=keys, digest=b"ct-a"), now=0.0
        )
        batcher.add(
            make_request(op="rotate", op_arg=2, key=keys, digest=b"ct-a"), now=0.6
        )
        # the migrated lane inherits the first request's opened_at = 0.0
        (group,) = batcher.due(now=1.0)
        assert group.hoisted and len(group) == 2

    def test_hoist_lane_fills_to_max_batch_size(self):
        batcher = DynamicBatcher(max_batch_size=3, max_delay_seconds=100.0)
        keys = self._keys()
        assert (
            batcher.add(
                make_request(op="rotate", op_arg=1, key=keys, digest=b"x"), now=0.0
            )
            is None
        )
        assert (
            batcher.add(
                make_request(op="rotate", op_arg=2, key=keys, digest=b"x"), now=0.0
            )
            is None
        )
        group = batcher.add(
            make_request(op="rotate", op_arg=3, key=keys, digest=b"x"), now=0.0
        )
        assert group is not None and group.hoisted and len(group) == 3
        assert batcher.pending_count == 0

    def test_different_key_objects_never_share_hoist_lane(self):
        """Same bytes under different key material must not hoist together."""
        batcher = DynamicBatcher(max_batch_size=8, max_delay_seconds=100.0)
        batcher.add(
            make_request(op="rotate", op_arg=1, key=object(), digest=b"x"), now=0.0
        )
        batcher.add(
            make_request(op="rotate", op_arg=2, key=object(), digest=b"x"), now=0.0
        )
        groups = batcher.flush_all()
        assert len(groups) == 2 and not any(g.hoisted for g in groups)

    def test_hoisting_can_be_disabled(self):
        batcher = DynamicBatcher(
            max_batch_size=8, max_delay_seconds=100.0, hoist_rotations=False
        )
        keys = self._keys()
        batcher.add(
            make_request(op="rotate", op_arg=1, key=keys, digest=b"x"), now=0.0
        )
        batcher.add(
            make_request(op="rotate", op_arg=2, key=keys, digest=b"x"), now=0.0
        )
        groups = batcher.flush_all()
        assert len(groups) == 2 and not any(g.hoisted for g in groups)

    def test_digestless_rotations_never_hoist(self):
        batcher = DynamicBatcher(max_batch_size=8, max_delay_seconds=100.0)
        keys = self._keys()
        batcher.add(make_request(op="rotate", op_arg=1, key=keys), now=0.0)
        batcher.add(make_request(op="rotate", op_arg=2, key=keys), now=0.0)
        groups = batcher.flush_all()
        assert len(groups) == 2 and not any(g.hoisted for g in groups)
