"""Fault injection for the sharded front-door: crashes, drains, rejoins.

Every scenario runs on deterministic in-process workers under a manual
clock (``make_cluster``), so "kill a worker mid-flight" is exactly
reproducible: the same requests are in the same lanes on every run.
The properties under test:

* a crash never hangs a client and never fabricates a response -- each
  in-flight request at the dead worker surfaces as exactly one ERROR
  frame, everything else completes normally;
* a graceful drain loses nothing: every request admitted anywhere
  completes as a RESPONSE, even requests whose batch deadline had not
  arrived when the drain started;
* a restarted worker rejoins the hash ring and consistent hashing puts
  its tenants back exactly where they were;
* the conservation law ``completed + shed + failed_over == submitted``
  holds through arbitrary seeded interleavings of traffic and faults,
  with every request getting exactly one terminal frame.
"""

from __future__ import annotations

import random

import pytest

from repro.serving import framing
from repro.serving.cluster import NoWorkersError
from repro.serving.traffic import multi_tenant_traffic
from repro.serving.worker import WorkerDeadError


def connect_traffic(context, cluster, tenants=3, clients_per=2, requests=4):
    """Register seeded multi-tenant traffic with a cluster."""
    tenants_, clients_, trace = multi_tenant_traffic(
        context, tenants, clients_per, requests
    )
    for t in tenants_:
        t.register_with(cluster)
    for c in clients_:
        c.connect_cluster(cluster)
    return tenants_, clients_, trace


def submitted_ids(trace):
    """``client_id -> {request_id}`` for a traffic trace."""
    ids = {}
    for client_id, frame_bytes in trace:
        _, request_id = framing.peek_frame_ids(frame_bytes)
        ids.setdefault(client_id, set()).add(request_id)
    return ids


def take_all(cluster, clients):
    """Drain every client outbox into ``client_id -> [Frame]``."""
    out = {}
    for c in clients:
        frames = [framing.decode_frame(b) for b in cluster.take_outbox(c.client_id)]
        if frames:
            out[c.client_id] = frames
    return out


def merge_terminals(into, frames_by_client):
    """Accumulate terminal frames, asserting one-per-request on the way."""
    for client_id, frames in frames_by_client.items():
        per = into.setdefault(client_id, {})
        for f in frames:
            assert f.request_id not in per, (
                f"client {client_id} got a second terminal frame for "
                f"request {f.request_id}"
            )
            per[f.request_id] = f


def loaded_worker(cluster):
    """The worker id holding the most in-flight requests."""
    counts = {}
    for (_, _), (wid, _) in cluster._inflight.items():
        counts[wid] = counts.get(wid, 0) + 1
    assert counts, "no requests in flight"
    return max(counts, key=counts.get)


class TestKillMidFlight:
    def test_inflight_surface_as_errors_rest_complete(
        self, serving_context, make_cluster
    ):
        cluster = make_cluster(worker_count=4)
        tenants, clients, trace = connect_traffic(serving_context, cluster)
        for cid, fr in trace:
            cluster.receive(cid, fr)
        assert cluster.inflight_count == len(trace)

        victim = loaded_worker(cluster)
        at_victim = sum(
            1 for (_, _), (wid, _) in cluster._inflight.items() if wid == victim
        )
        failed = cluster.kill_worker(victim)
        assert failed == at_victim
        assert cluster.report.failed_over_requests == failed
        assert victim not in cluster.ring

        cluster.drain()
        terminals = {}
        merge_terminals(terminals, take_all(cluster, clients))
        # exactly one terminal frame per submitted request
        assert {
            cid: set(per) for cid, per in terminals.items()
        } == submitted_ids(trace)
        errors = [
            f for per in terminals.values() for f in per.values()
            if f.kind == framing.ERROR
        ]
        assert len(errors) == failed
        assert all("died" in f.error_message for f in errors)
        # the survivors' responses are real ciphertexts, not junk
        by_tenant = {c.client_id: c.tenant for c in clients}
        for cid, per in terminals.items():
            for f in per.values():
                if f.kind == framing.RESPONSE:
                    by_tenant[cid].decrypt_response(
                        framing.encode_frame(
                            f.kind, f.request_id, f.client_id,
                            f.op, f.op_arg, f.payload,
                        )
                    )

    def test_responses_collected_before_the_crash_survive(
        self, serving_context, make_cluster, manual_clock
    ):
        cluster = make_cluster(worker_count=2)
        tenants, clients, trace = connect_traffic(serving_context, cluster)
        for cid, fr in trace:
            cluster.receive(cid, fr)
        # admit into lanes, then let every deadline pass and collect:
        # all responses are out
        cluster.pump()
        manual_clock.advance(1.0)
        cluster.pump()
        assert cluster.inflight_count == 0
        victim = cluster.ring.worker_ids[0]
        assert cluster.kill_worker(victim) == 0  # nothing left to lose

        terminals = {}
        merge_terminals(terminals, take_all(cluster, clients))
        kinds = {f.kind for per in terminals.values() for f in per.values()}
        assert kinds == {framing.RESPONSE}
        assert {
            cid: set(per) for cid, per in terminals.items()
        } == submitted_ids(trace)

    def test_sessions_leave_the_dead_worker(self, serving_context, make_cluster):
        cluster = make_cluster(worker_count=4)
        tenants, clients, trace = connect_traffic(serving_context, cluster)
        victim = cluster.client_worker(clients[0].client_id)
        cluster.kill_worker(victim)
        for c in clients:
            assert cluster.client_worker(c.client_id) != victim
        # traffic still completes on the survivors
        for cid, fr in trace:
            cluster.receive(cid, fr)
        cluster.drain()
        terminals = {}
        merge_terminals(terminals, take_all(cluster, clients))
        kinds = {f.kind for per in terminals.values() for f in per.values()}
        assert kinds == {framing.RESPONSE}

    def test_killing_the_last_worker_raises(self, serving_context, make_cluster):
        cluster = make_cluster(worker_count=1)
        connect_traffic(serving_context, cluster, tenants=1, clients_per=1, requests=1)
        with pytest.raises(NoWorkersError):
            cluster.kill_worker("w0")


class TestRestart:
    def test_restart_rejoins_ring_and_restores_placement(
        self, serving_context, make_cluster
    ):
        cluster = make_cluster(worker_count=4)
        tenants, clients, trace = connect_traffic(serving_context, cluster)
        before = {c.client_id: cluster.client_worker(c.client_id) for c in clients}
        victim = before[clients[0].client_id]

        cluster.kill_worker(victim)
        cluster.restart_worker(victim)
        assert victim in cluster.ring
        # consistent hashing puts every tenant back where it was
        after = {c.client_id: cluster.client_worker(c.client_id) for c in clients}
        assert after == before

        # the fresh worker has an empty key cache: key material must
        # have re-uploaded, or these keyed requests would all ERROR
        for cid, fr in trace:
            cluster.receive(cid, fr)
        cluster.drain()
        terminals = {}
        merge_terminals(terminals, take_all(cluster, clients))
        kinds = {f.kind for per in terminals.values() for f in per.values()}
        assert kinds == {framing.RESPONSE}

    def test_rejoining_a_dead_worker_is_refused(self, serving_context, make_cluster):
        cluster = make_cluster(worker_count=2)
        connect_traffic(serving_context, cluster, tenants=1, clients_per=1, requests=1)
        cluster.kill_worker("w0")
        with pytest.raises(WorkerDeadError, match="restart_worker"):
            cluster.rejoin_worker("w0")


class TestDrainUnderLoad:
    def test_drain_loses_zero_responses(self, serving_context, make_cluster):
        cluster = make_cluster(worker_count=4)
        tenants, clients, trace = connect_traffic(
            serving_context, cluster, requests=6
        )
        for cid, fr in trace:
            cluster.receive(cid, fr)
        victim = loaded_worker(cluster)
        at_victim = sum(
            1 for (_, _), (wid, _) in cluster._inflight.items() if wid == victim
        )
        assert at_victim > 0
        cluster.drain_worker(victim)
        # everything in flight at the drained worker completed
        assert not any(
            wid == victim for (_, _), (wid, _) in cluster._inflight.items()
        )
        assert victim not in cluster.ring
        cluster.drain()

        terminals = {}
        merge_terminals(terminals, take_all(cluster, clients))
        assert {
            cid: set(per) for cid, per in terminals.items()
        } == submitted_ids(trace)
        kinds = {f.kind for per in terminals.values() for f in per.values()}
        assert kinds == {framing.RESPONSE}
        assert cluster.report.failed_over_requests == 0
        assert cluster.report.shed_requests == 0

    def test_deadline_straddling_admissions_flush_on_drain(
        self, serving_context, make_cluster, manual_clock
    ):
        """Requests whose lane deadline is still in the future when the
        drain starts must flush anyway -- a drain waits for no deadline.
        The manual clock never advances, so any wall-clock dependence
        in the drain path would leave these requests pending forever
        (this is the regression test for the drain-ignores-``now`` fix)."""
        cluster = make_cluster(worker_count=2)
        tenants, clients, trace = connect_traffic(
            serving_context, cluster, tenants=2, clients_per=1, requests=2
        )
        for cid, fr in trace:
            cluster.receive(cid, fr)
        assert cluster.inflight_count == len(trace)
        for wid in list(cluster.ring.worker_ids):
            cluster.drain_worker(wid, now=manual_clock())
        assert cluster.inflight_count == 0
        terminals = {}
        merge_terminals(terminals, take_all(cluster, clients))
        kinds = {f.kind for per in terminals.values() for f in per.values()}
        assert kinds == {framing.RESPONSE}

    def test_admission_during_drain_errors_at_the_worker(
        self, serving_context, make_cluster
    ):
        """A frame that reaches a draining worker anyway (router race) is
        answered with an ERROR, never silently dropped."""
        cluster = make_cluster(worker_count=2)
        tenants, clients, trace = connect_traffic(
            serving_context, cluster, tenants=1, clients_per=1, requests=2
        )
        client = clients[0]
        wid = cluster.client_worker(client.client_id)
        handle = cluster.workers[wid]
        handle.begin_drain()
        handle.feed(client.client_id, trace[0][1])
        responses = handle.poll_responses()
        (frame_bytes,) = responses[client.client_id]
        frame = framing.decode_frame(frame_bytes)
        assert frame.kind == framing.ERROR
        assert "draining" in frame.error_message

    def test_rejoin_after_drain_restores_placement(
        self, serving_context, make_cluster
    ):
        cluster = make_cluster(worker_count=4)
        tenants, clients, trace = connect_traffic(serving_context, cluster)
        before = {c.client_id: cluster.client_worker(c.client_id) for c in clients}
        victim = before[clients[0].client_id]
        cluster.drain_worker(victim)
        assert all(
            cluster.client_worker(c.client_id) != victim for c in clients
        )
        cluster.rejoin_worker(victim)
        after = {c.client_id: cluster.client_worker(c.client_id) for c in clients}
        assert after == before
        # and it serves again
        for cid, fr in trace:
            cluster.receive(cid, fr)
        cluster.drain()
        terminals = {}
        merge_terminals(terminals, take_all(cluster, clients))
        kinds = {f.kind for per in terminals.values() for f in per.values()}
        assert kinds == {framing.RESPONSE}


class TestConservation:
    """completed + shed + failed_over == submitted, through chaos."""

    def test_shedding_is_explicit_and_counted(self, serving_context, make_cluster):
        cluster = make_cluster(worker_count=2, max_inflight=4)
        tenants, clients, trace = connect_traffic(
            serving_context, cluster, tenants=2, clients_per=2, requests=3
        )
        for cid, fr in trace:
            cluster.receive(cid, fr)
        shed = cluster.report.shed_requests
        assert shed == len(trace) - 4  # everything over the cap
        cluster.drain()
        terminals = {}
        merge_terminals(terminals, take_all(cluster, clients))
        # shed requests still got their terminal (ERROR) frame
        assert {
            cid: set(per) for cid, per in terminals.items()
        } == submitted_ids(trace)
        errors = [
            f for per in terminals.values() for f in per.values()
            if f.kind == framing.ERROR
        ]
        assert len(errors) == shed
        assert all("capacity" in f.error_message for f in errors)
        r = cluster.report
        assert r.completed + r.shed_requests + r.failed_over_requests == r.submitted

    @pytest.mark.parametrize("seed", range(4))
    def test_seeded_chaos_every_request_gets_one_terminal(
        self, serving_context, make_cluster, manual_clock, seed
    ):
        rng = random.Random(7000 + seed)
        cluster = make_cluster(worker_count=4)
        tenants, clients, trace = connect_traffic(
            serving_context, cluster, tenants=3, clients_per=2, requests=6
        )
        expected = submitted_ids(trace)
        terminals = {}

        i = 0
        while i < len(trace):
            roll = rng.random()
            if roll < 0.55:
                for _ in range(rng.randrange(1, 6)):
                    if i >= len(trace):
                        break
                    cid, fr = trace[i]
                    i += 1
                    cluster.receive(cid, fr)
            elif roll < 0.75:
                manual_clock.advance(rng.choice((0.0005, 0.002, 0.05)))
                cluster.pump()
            elif roll < 0.87 and len(cluster.ring) > 1:
                wid = rng.choice(cluster.ring.worker_ids)
                cluster.kill_worker(wid)
                if rng.random() < 0.5:
                    cluster.restart_worker(wid)
            elif len(cluster.ring) > 1:
                wid = rng.choice(cluster.ring.worker_ids)
                cluster.drain_worker(wid)
                cluster.rejoin_worker(wid)
            merge_terminals(terminals, take_all(cluster, clients))

        cluster.drain()
        merge_terminals(terminals, take_all(cluster, clients))
        assert {cid: set(per) for cid, per in terminals.items()} == expected
        r = cluster.report
        assert r.completed + r.shed_requests + r.failed_over_requests == r.submitted
        assert cluster.inflight_count == 0
