"""Serving-layer fixtures: a toy context plus one synthetic tenant."""

from __future__ import annotations

import pytest

from repro.ckks.context import CkksContext, toy_parameters
from repro.serving.traffic import SyntheticClient, SyntheticTenant


@pytest.fixture(scope="session")
def serving_context() -> CkksContext:
    return CkksContext(toy_parameters(n=64, k=3, prime_bits=30))


@pytest.fixture(scope="session")
def tenant(serving_context) -> SyntheticTenant:
    return SyntheticTenant(serving_context, seed=404)


@pytest.fixture()
def make_client(tenant):
    """Factory for clients with unique ids per test."""
    counter = {"n": 0}

    def _make() -> SyntheticClient:
        counter["n"] += 1
        return SyntheticClient(tenant, f"c{counter['n']}-{id(counter)}", seed=counter["n"])

    return _make
