"""Serving-layer fixtures: a toy context plus one synthetic tenant."""

from __future__ import annotations

import pytest

from repro.ckks.context import CkksContext, toy_parameters
from repro.serving.clock import ManualClock
from repro.serving.cluster import ServingCluster
from repro.serving.traffic import SyntheticClient, SyntheticTenant
from repro.serving.worker import LocalWorkerHandle, WorkerSpec


@pytest.fixture()
def manual_clock() -> ManualClock:
    return ManualClock()


@pytest.fixture(scope="session")
def serving_context() -> CkksContext:
    return CkksContext(toy_parameters(n=64, k=3, prime_bits=30))


@pytest.fixture()
def make_cluster(serving_context, manual_clock):
    """Factory for deterministic local-worker clusters on a manual clock."""

    built = []

    def _make(worker_count: int = 4, **kwargs) -> ServingCluster:
        spec = WorkerSpec(params=serving_context.params)
        cluster = ServingCluster(
            lambda wid: LocalWorkerHandle(wid, spec, clock=manual_clock),
            worker_count=worker_count,
            clock=manual_clock,
            **kwargs,
        )
        built.append(cluster)
        return cluster

    yield _make
    for cluster in built:
        cluster.stop()


@pytest.fixture(scope="session")
def tenant(serving_context) -> SyntheticTenant:
    return SyntheticTenant(serving_context, seed=404)


@pytest.fixture()
def make_client(tenant):
    """Factory for clients with unique ids per test."""
    counter = {"n": 0}

    def _make() -> SyntheticClient:
        counter["n"] += 1
        return SyntheticClient(tenant, f"c{counter['n']}-{id(counter)}", seed=counter["n"])

    return _make
