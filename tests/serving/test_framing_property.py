"""Property/fuzz tests for the wire layer: framing and deserializers.

The sharded front-door stands or falls with its byte-level parsers --
every router, worker and socket connection runs :class:`FrameDecoder`
over adversarially chunked streams, and every payload goes through one
of the three HEAX deserializers.  These tests state the parsers'
contracts as *properties* over seeded random inputs (``random.Random``
only -- no external property-testing dependency, and every run replays
the identical cases):

* chunking invariance -- a decoder fed a stream one byte at a time, or
  re-chunked at any seeded random boundaries, yields exactly the frames
  of a one-shot decode, in order;
* truncation safety -- any prefix of a valid stream yields exactly the
  complete frames before the cut and raises nothing (a partial frame
  just waits);
* corruption reporting -- a corrupted frame header raises
  :class:`StreamProtocolError` that *carries* every frame decoded ahead
  of the corruption, so good requests in the same read are never lost;
* deserializer totality -- for ciphertext/plaintext/key-switching-key
  blobs, truncation always raises ``ValueError`` (never silent zeros),
  arbitrary byte corruption either raises ``ValueError`` or returns a
  well-typed object, and valid blobs round-trip byte-identically.
"""

from __future__ import annotations

import random

import pytest

from repro.ckks.keys import KeyGenerator
from repro.ckks.serialization import (
    HEADER_BYTES,
    deserialize_ciphertext,
    deserialize_kswitch_key,
    deserialize_plaintext,
    serialize_ciphertext,
    serialize_kswitch_key,
    serialize_plaintext,
)
from repro.serving import framing
from repro.serving.framing import FrameDecoder, StreamProtocolError


# ----------------------------------------------------------------------
# seeded random frame streams
# ----------------------------------------------------------------------
def random_frame(rng: random.Random) -> bytes:
    kind = rng.choice((framing.REQUEST, framing.RESPONSE, framing.ERROR, framing.HELLO))
    request_id = rng.randrange(0, 1 << 48)
    client_id = "".join(rng.choice("abcdef-0123456789") for _ in range(rng.randrange(0, 24)))
    op = rng.choice(("", "square", "rotate", "conjugate", "x" * rng.randrange(1, 40)))
    op_arg = rng.randrange(-(1 << 20), 1 << 20)
    payload = rng.randbytes(rng.randrange(0, 512))
    return framing.encode_frame(kind, request_id, client_id, op, op_arg, payload)


def random_stream(rng: random.Random, count: int):
    """``count`` random frames plus their concatenated stream bytes."""
    frames_bytes = [random_frame(rng) for _ in range(count)]
    return frames_bytes, b"".join(frames_bytes)


def decode_stream_oneshot(frames_bytes):
    return [framing.decode_frame(b) for b in frames_bytes]


class TestChunkingInvariance:
    @pytest.mark.parametrize("seed", range(8))
    def test_byte_at_a_time_equals_one_shot(self, seed):
        rng = random.Random(1000 + seed)
        frames_bytes, stream = random_stream(rng, rng.randrange(1, 8))
        expected = decode_stream_oneshot(frames_bytes)

        decoder = FrameDecoder()
        got = []
        for i in range(len(stream)):
            got.extend(decoder.feed(stream[i : i + 1]))
        assert got == expected
        assert decoder.pending_bytes == 0

    @pytest.mark.parametrize("seed", range(16))
    def test_random_rechunking_equals_one_shot(self, seed):
        rng = random.Random(2000 + seed)
        frames_bytes, stream = random_stream(rng, rng.randrange(1, 12))
        expected = decode_stream_oneshot(frames_bytes)

        # seeded random cut points, including empty chunks
        cuts = sorted(rng.randrange(0, len(stream) + 1) for _ in range(rng.randrange(0, 40)))
        bounds = [0] + cuts + [len(stream)]
        decoder = FrameDecoder()
        got = []
        for lo, hi in zip(bounds, bounds[1:]):
            got.extend(decoder.feed(stream[lo:hi]))
        assert got == expected
        assert decoder.pending_bytes == 0

    def test_single_frame_every_boundary(self):
        """Exhaustive split of one frame at every byte boundary."""
        rng = random.Random(3)
        frame_bytes = random_frame(rng)
        expected = framing.decode_frame(frame_bytes)
        for cut in range(len(frame_bytes) + 1):
            decoder = FrameDecoder()
            first = decoder.feed(frame_bytes[:cut])
            second = decoder.feed(frame_bytes[cut:])
            assert first + second == [expected], f"split at {cut}"


class TestTruncation:
    @pytest.mark.parametrize("seed", range(8))
    def test_any_prefix_yields_exactly_complete_frames(self, seed):
        rng = random.Random(4000 + seed)
        frames_bytes, stream = random_stream(rng, 4)
        expected = decode_stream_oneshot(frames_bytes)
        # frame end offsets within the stream
        ends = []
        pos = 0
        for b in frames_bytes:
            pos += len(b)
            ends.append(pos)

        for cut in sorted(rng.randrange(0, len(stream) + 1) for _ in range(32)):
            complete = sum(1 for e in ends if e <= cut)
            decoder = FrameDecoder()
            got = decoder.feed(stream[:cut])
            assert got == expected[:complete], f"prefix of {cut} bytes"
            assert decoder.pending_bytes == cut - (ends[complete - 1] if complete else 0)


class TestCorruption:
    @pytest.mark.parametrize("seed", range(12))
    def test_header_corruption_carries_prior_frames(self, seed):
        """Corrupt a header byte of frame k: the decoder raises
        StreamProtocolError whose ``frames`` are exactly frames 0..k-1."""
        rng = random.Random(5000 + seed)
        frames_bytes, _ = random_stream(rng, 4)
        expected = decode_stream_oneshot(frames_bytes)
        victim = rng.randrange(0, len(frames_bytes))

        # flip one byte of magic/version/kind: offsets 4..9 after the
        # length prefix -- guaranteed malformed, never "just a longer
        # frame" the decoder would wait for
        corrupt = bytearray(frames_bytes[victim])
        offset = rng.randrange(4, 10)
        corrupt[offset] ^= 0xFF
        stream = b"".join(frames_bytes[:victim]) + bytes(corrupt) + b"".join(
            frames_bytes[victim + 1 :]
        )

        decoder = FrameDecoder()
        with pytest.raises(StreamProtocolError) as excinfo:
            decoder.feed(stream)
        assert excinfo.value.frames == expected[:victim]
        # the corrupt head stays corrupt: the stream cannot resync
        with pytest.raises(StreamProtocolError):
            decoder.feed(b"")

    def test_oversized_length_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=1 << 10)
        huge = (1 << 20).to_bytes(4, "little")
        with pytest.raises(StreamProtocolError, match="exceeds cap"):
            decoder.feed(huge)


# ----------------------------------------------------------------------
# the three payload deserializers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def wire_objects(serving_context):
    """One valid serialized blob per kind, plus its deserializer."""
    keygen = KeyGenerator(serving_context, seed=77)
    from repro.ckks.encoder import CkksEncoder
    from repro.ckks.encryptor import Encryptor

    encoder = CkksEncoder(serving_context)
    pt = encoder.encode([0.5, -0.25, 0.125])
    ct = Encryptor(serving_context, keygen.public_key(), seed=7).encrypt(pt)
    ksk = keygen.relin_key()  # a RelinKey IS a KswitchKey
    return [
        ("ciphertext", serialize_ciphertext(ct), deserialize_ciphertext),
        ("plaintext", serialize_plaintext(pt), deserialize_plaintext),
        ("kswitch_key", serialize_kswitch_key(ksk), deserialize_kswitch_key),
    ]


class TestDeserializerProperties:
    def test_round_trip_is_byte_identical(self, serving_context, wire_objects):
        serializers = {
            "ciphertext": serialize_ciphertext,
            "plaintext": serialize_plaintext,
            "kswitch_key": serialize_kswitch_key,
        }
        for name, blob, deserialize in wire_objects:
            obj = deserialize(blob, serving_context)
            assert serializers[name](obj) == blob, name

    def test_every_truncation_raises(self, serving_context, wire_objects):
        """No prefix of a valid blob deserializes -- exact-length checks
        mean truncation can never produce silent zero residues."""
        for name, blob, deserialize in wire_objects:
            rng = random.Random(len(blob))
            cuts = {0, 1, HEADER_BYTES - 1, HEADER_BYTES, len(blob) - 1}
            cuts.update(rng.randrange(0, len(blob)) for _ in range(32))
            for cut in sorted(cuts):
                with pytest.raises(ValueError):
                    deserialize(blob[:cut], serving_context)

    def test_trailing_bytes_raise(self, serving_context, wire_objects):
        for name, blob, deserialize in wire_objects:
            with pytest.raises(ValueError, match="trailing"):
                deserialize(blob + b"\x00", serving_context)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_corruption_is_total(self, serving_context, wire_objects, seed):
        """Flipping arbitrary bytes either raises ValueError or yields a
        well-typed object -- never a crash, never a wrong type."""
        expected_types = {
            "ciphertext": "Ciphertext",
            "plaintext": "Plaintext",
            "kswitch_key": "KswitchKey",
        }
        for name, blob, deserialize in wire_objects:
            rng = random.Random(6000 + seed + len(blob))
            for _ in range(24):
                corrupt = bytearray(blob)
                for _ in range(rng.randrange(1, 4)):
                    corrupt[rng.randrange(0, len(corrupt))] ^= 1 << rng.randrange(8)
                try:
                    obj = deserialize(bytes(corrupt), serving_context)
                except ValueError:
                    continue  # rejection is the expected common outcome
                assert type(obj).__name__ == expected_types[name]

    def test_kind_confusion_rejected(self, serving_context, wire_objects):
        """Every blob fed to the other two deserializers is rejected."""
        by_name = {name: (blob, de) for name, blob, de in wire_objects}
        for name, (blob, _) in by_name.items():
            for other, (_, deserialize) in by_name.items():
                if other == name:
                    continue
                with pytest.raises(ValueError):
                    deserialize(blob, serving_context)
