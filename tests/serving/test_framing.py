"""Frame encode/decode and the incremental stream decoder."""

import struct

import pytest

from repro.serving.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    ERROR,
    FRAME_OVERHEAD,
    Frame,
    FrameDecoder,
    REQUEST,
    RESPONSE,
    decode_frame,
    encode_frame,
)


def sample_frame(payload=b"\x01\x02\x03", kind=REQUEST):
    return encode_frame(kind, 42, "client-7", op="rotate", op_arg=-3, payload=payload)


class TestRoundTrip:
    @pytest.mark.parametrize("kind", [REQUEST, RESPONSE, ERROR])
    @pytest.mark.parametrize("payload", [b"", b"x", b"\x00" * 257])
    def test_roundtrip(self, kind, payload):
        frame = decode_frame(sample_frame(payload, kind))
        assert frame == Frame(kind, 42, "client-7", "rotate", -3, payload)

    def test_empty_op_and_client(self):
        frame = decode_frame(encode_frame(RESPONSE, 0, ""))
        assert frame.client_id == "" and frame.op == "" and frame.payload == b""

    def test_error_message_helper(self):
        blob = encode_frame(ERROR, 9, "c", payload="queue full".encode())
        assert decode_frame(blob).error_message == "queue full"

    def test_overhead_constant_matches(self):
        assert len(encode_frame(REQUEST, 0, "")) == FRAME_OVERHEAD


class TestValidation:
    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(ValueError, match="kind"):
            encode_frame(99, 1, "c")

    def test_unknown_kind_rejected_on_decode(self):
        blob = bytearray(sample_frame())
        blob[4 + 5] = 99  # kind byte: prefix(4) + magic(4) + version(1)
        with pytest.raises(ValueError, match="kind"):
            decode_frame(bytes(blob))

    def test_bad_magic_rejected(self):
        blob = bytearray(sample_frame())
        blob[4] = 0
        with pytest.raises(ValueError, match="not a serving-protocol frame"):
            decode_frame(bytes(blob))

    def test_bad_version_rejected(self):
        blob = bytearray(sample_frame())
        blob[4 + 4] = 200
        with pytest.raises(ValueError, match="version"):
            decode_frame(bytes(blob))

    def test_truncated_buffer_rejected(self):
        blob = sample_frame()
        for cut in (0, 3, 10, len(blob) - 1):
            with pytest.raises(ValueError):
                decode_frame(blob[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            decode_frame(sample_frame() + b"junk")

    def test_inconsistent_id_lengths_rejected(self):
        blob = bytearray(sample_frame(b""))
        # op_len byte claims more than the body holds
        struct.pack_into("<B", blob, 4 + 4 + 1 + 1 + 8 + 4 + 1, 255)
        with pytest.raises(ValueError, match="inconsistent"):
            decode_frame(bytes(blob))

    def test_oversized_ids_rejected_on_encode(self):
        with pytest.raises(ValueError, match="255"):
            encode_frame(REQUEST, 1, "c" * 300)


class TestFrameDecoder:
    def test_single_feed_many_frames(self):
        frames = [sample_frame(bytes([i])) for i in range(5)]
        out = FrameDecoder().feed(b"".join(frames))
        assert [f.payload for f in out] == [bytes([i]) for i in range(5)]

    def test_byte_dribble(self):
        """Frames survive arrival one byte at a time (worst-case socket)."""
        stream = sample_frame(b"abc") + sample_frame(b"defg")
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert [f.payload for f in out] == [b"abc", b"defg"]
        assert decoder.pending_bytes == 0

    def test_partial_frame_waits(self):
        blob = sample_frame(b"xyz")
        decoder = FrameDecoder()
        assert decoder.feed(blob[:-1]) == []
        assert decoder.pending_bytes == len(blob) - 1
        assert [f.payload for f in decoder.feed(blob[-1:])] == [b"xyz"]

    def test_oversized_frame_rejected(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        blob = sample_frame(b"\x00" * 128)
        with pytest.raises(ValueError, match="cap"):
            decoder.feed(blob)

    def test_default_cap_fits_setc_ciphertext(self):
        # Set-C size-3 ciphertext: 3 comps x 8 primes x 2^14 x 8 B
        assert 3 * 8 * 16384 * 8 < DEFAULT_MAX_FRAME_BYTES

    def test_undersized_length_field_rejected(self):
        with pytest.raises(ValueError, match="below fixed header"):
            FrameDecoder().feed(struct.pack("<I", 2) + b"ab")


class TestStreamErrorSalvage:
    """A malformed frame must not lose valid frames from the same chunk."""

    def test_feed_raises_with_salvaged_frames(self):
        from repro.serving.framing import StreamProtocolError

        good = sample_frame(b"keep-me")
        bad = bytearray(sample_frame(b"x"))
        bad[4] = 0  # corrupt magic of the second frame
        with pytest.raises(StreamProtocolError) as excinfo:
            FrameDecoder().feed(good + bytes(bad))
        assert [f.payload for f in excinfo.value.frames] == [b"keep-me"]

    def test_next_frame_does_not_consume_on_error(self):
        bad = bytearray(sample_frame(b"x"))
        bad[4] = 0
        decoder = FrameDecoder()
        with pytest.raises(ValueError):
            decoder.feed(bytes(bad))
        assert decoder.pending_bytes == len(bad)  # still at the head
        with pytest.raises(ValueError):
            decoder.next_frame()  # a corrupt stream stays corrupt

    def test_next_frame_incremental_consumption(self):
        decoder = FrameDecoder()
        assert decoder.next_frame() is None
        decoder.feed(b"")  # no-op
        stream = sample_frame(b"a") + sample_frame(b"b")
        decoder._buffer.extend(stream)
        assert decoder.next_frame().payload == b"a"
        assert decoder.next_frame().payload == b"b"
        assert decoder.next_frame() is None
