"""Multi-op program requests: one registered op chain, one plan-executed
flush -- plus the hoist-lane PCIe billing regression (a hoisted sweep
uploads its shared ciphertext once, not once per rotation).
"""

import numpy as np
import pytest

from repro.ckks.backend import CountingBackend
from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.serialization import ciphertext_wire_bytes, serialize_ciphertext
from repro.serving import framing
from repro.serving.server import EncryptedComputeServer
from repro.serving.traffic import SyntheticClient, SyntheticTenant

PROGRAM_ID = 7
PROGRAM = (("rotate", 1), "square", "rescale")


def _drain_frames(server, clients):
    out = {}
    for client in clients:
        for blob in server.sessions.get(client.client_id).take_outbox():
            frame = framing.decode_frame(blob)
            out[(client.client_id, frame.request_id)] = (frame, blob)
    return out


class TestProgramRequests:
    def _serve_program(self, serving_context, tenant, n_clients, max_batch_size):
        server = EncryptedComputeServer(
            serving_context, max_batch_size=max_batch_size
        )
        server.register_program(PROGRAM_ID, PROGRAM)
        clients = [
            SyntheticClient(tenant, f"prog-{i}", seed=600 + i)
            for i in range(n_clients)
        ]
        slots = serving_context.params.slot_count
        bases = {}
        for i, client in enumerate(clients):
            client.connect(server)
            base = np.linspace(-0.4, 0.4, slots) * (i + 1) / n_clients
            bases[client.client_id] = base
            server.receive(
                client.client_id,
                client.request_bytes("program", list(base), op_arg=PROGRAM_ID),
            )
        completed = server.drain()
        return server, clients, bases, completed

    def test_program_flush_is_batched_and_decrypts_correctly(
        self, serving_context, tenant
    ):
        server, clients, bases, completed = self._serve_program(
            serving_context, tenant, 4, max_batch_size=4
        )
        assert completed == 4
        (flush,) = server.report.flushes
        assert flush.op == "program" and flush.batch_size == 4 and flush.batched
        # rotate dominates the chain: the flush schedules as a key switch
        assert flush.scheduled.kind == "keyswitch"
        for client in clients:
            (blob,) = server.sessions.get(client.client_id).take_outbox()
            frame = framing.decode_frame(blob)
            assert frame.kind == framing.RESPONSE and frame.op == "program"
            _, values = tenant.decrypt_response(blob)
            expected = np.roll(bases[client.client_id], -1) ** 2
            np.testing.assert_allclose(
                np.array(values).real, expected, atol=1e-2
            )

    def test_batched_program_equals_singleton_bit_for_bit(
        self, serving_context, tenant
    ):
        def run(max_batch_size):
            server, clients, _, _ = self._serve_program(
                serving_context, tenant, 4, max_batch_size=max_batch_size
            )
            return {
                key: frame.payload
                for key, (frame, _) in _drain_frames(server, clients).items()
            }

        sequential = run(1)
        batched = run(4)
        assert sequential.keys() == batched.keys() and len(batched) == 4
        for key in sequential:
            assert sequential[key] == batched[key], f"bit mismatch for {key}"

    def test_cross_session_tenant_sharing_batches(self, serving_context, tenant):
        """Sessions of one tenant share key objects but wrap them in
        per-session bundles; they must still share a program lane."""
        server, _, _, _ = self._serve_program(
            serving_context, tenant, 3, max_batch_size=3
        )
        (flush,) = server.report.flushes
        assert flush.batch_size == 3 and flush.batched

    def test_unknown_program_id_rejected(self, serving_context, tenant, make_client):
        server = EncryptedComputeServer(serving_context)
        client = make_client()
        client.connect(server)
        server.receive(
            client.client_id,
            client.request_bytes("program", [1.0], op_arg=99),
        )
        server.drain()
        (blob,) = server.sessions.get(client.client_id).take_outbox()
        frame = framing.decode_frame(blob)
        assert frame.kind == framing.ERROR
        assert "unknown program id 99" in frame.error_message

    def test_program_without_relin_key_rejected(self, serving_context, tenant):
        server = EncryptedComputeServer(serving_context)
        server.register_program(PROGRAM_ID, PROGRAM)
        server.register_client("bare", key_id="bare")  # no keys uploaded
        bare = SyntheticClient(tenant, "unused", seed=5)
        ct = bare.encryptor.encrypt(tenant.encoder.encode([1.0]))
        server.receive(
            "bare",
            framing.encode_frame(
                framing.REQUEST,
                1,
                "bare",
                op="program",
                op_arg=PROGRAM_ID,
                payload=serialize_ciphertext(ct),
            ),
        )
        server.drain()
        (blob,) = server.sessions.get("bare").take_outbox()
        frame = framing.decode_frame(blob)
        assert frame.kind == framing.ERROR
        assert "relinearization key" in frame.error_message

    def test_register_program_validates_steps(self, serving_context):
        server = EncryptedComputeServer(serving_context)
        with pytest.raises(ValueError, match="unknown program step"):
            server.register_program(1, ["launder"])
        with pytest.raises(ValueError, match="rotate step must be nonzero"):
            server.register_program(1, [("rotate", 0)])
        with pytest.raises(ValueError, match="at least one step"):
            server.register_program(1, [])


class TestHoistFlushBilling:
    """The satellite-2 regression: a hoist lane rotates ONE ciphertext
    by many steps, so the flush bills one upload and one key-switch
    decomposition -- not one per rotation."""

    STEPS = [1, 2, 3]

    def _sweep(self, context, seed=909):
        tenant = SyntheticTenant(context, seed=seed, key_id="tenant-bill")
        tenant.galois_keys = tenant.keygen.galois_keys(
            self.STEPS, conjugation=True
        )
        client = SyntheticClient(tenant, "bill-client", seed=910)
        server = EncryptedComputeServer(context, max_batch_size=8)
        client.connect(server)
        for blob in client.rotation_sweep_bytes([0.5, -0.25], self.STEPS):
            server.receive(client.client_id, blob)
        assert server.drain() == len(self.STEPS)
        return server, client

    def test_hoisted_flush_bills_one_upload(self, serving_context):
        server, _ = self._sweep(serving_context)
        (flush,) = server.report.flushes
        assert flush.op == "rotate_hoisted"
        one_ct = ciphertext_wire_bytes(
            serving_context.n,
            2,
            serving_context.k,
            moduli=serving_context.basis_at_level(serving_context.k).moduli,
        )
        # the shared input crosses PCIe once...
        assert flush.scheduled.input_bytes == one_ct
        # ...while every rotation's result comes back
        assert flush.scheduled.output_bytes == len(self.STEPS) * one_ct

    def test_hoisted_flush_runs_one_decomposition(self):
        """CountingBackend regression: the flush's transform budget is
        the hoisted one (fan-out once), matching what it bills."""
        L, R = 3, len(self.STEPS)
        be = CountingBackend("reference")
        ctx = CkksContext(toy_parameters(n=64, k=L, prime_bits=30), backend=be)
        server, _ = self._sweep(ctx, seed=911)
        # count a fresh identical sweep against a reset counter: key
        # upload/encryption above polluted the counts
        be.reset()
        tenant = SyntheticTenant(ctx, seed=912, key_id="tenant-count")
        tenant.galois_keys = tenant.keygen.galois_keys(self.STEPS)
        client = SyntheticClient(tenant, "count-client", seed=913)
        client.connect(server)
        blobs = list(client.rotation_sweep_bytes([1.0], self.STEPS))
        be.reset()  # client-side encryption must not pollute the count
        for blob in blobs:
            server.receive(client.client_id, blob)
        assert server.drain() == R
        # one decomposition fan-out (L INTT + L^2 NTT rows) + the
        # per-rotation Modulus Switch -- the rotate_hoisted budget
        assert be.counts["ntt_inverse"] == L + 2 * R
        assert be.counts["ntt_forward"] == L * L + 2 * L * R
