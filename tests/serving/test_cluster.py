"""Router units and transports: ring, placement, admission, front-door.

The fault and differential suites prove the cluster's end-to-end
properties; this file pins the pieces those proofs stand on -- the
consistent-hash ring's movement bounds, the router's admission rules,
same-tenant lane sharing across sharded clients, the real
process-worker transport, and the asyncio socket front-door's
connection protocol.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.serving import framing
from repro.serving.cluster import AsyncFrontDoor, HashRing, NoWorkersError, ServingCluster
from repro.serving.session import UnknownClientError
from repro.serving.traffic import SyntheticTenant, multi_tenant_traffic
from repro.serving.worker import LocalWorkerHandle, ProcessWorkerHandle, WorkerSpec


class TestHashRing:
    def test_placement_is_deterministic(self):
        a, b = HashRing(), HashRing()
        for ring in (a, b):
            for wid in ("w0", "w1", "w2", "w3"):
                ring.add(wid)
        keys = [f"tenant-{i}" for i in range(100)]
        assert [a.place(k) for k in keys] == [b.place(k) for k in keys]

    def test_removal_only_moves_the_removed_workers_keys(self):
        ring = HashRing()
        for wid in ("w0", "w1", "w2", "w3"):
            ring.add(wid)
        keys = [f"tenant-{i}" for i in range(200)]
        before = {k: ring.place(k) for k in keys}
        ring.remove("w1")
        after = {k: ring.place(k) for k in keys}
        for k in keys:
            if before[k] != "w1":
                assert after[k] == before[k], f"{k} moved needlessly"
            else:
                assert after[k] != "w1"

    def test_rejoin_restores_exact_placement(self):
        ring = HashRing()
        for wid in ("w0", "w1", "w2", "w3"):
            ring.add(wid)
        keys = [f"tenant-{i}" for i in range(200)]
        before = {k: ring.place(k) for k in keys}
        ring.remove("w2")
        ring.add("w2")
        assert {k: ring.place(k) for k in keys} == before

    def test_virtual_nodes_spread_load(self):
        ring = HashRing(vnodes=64)
        for wid in ("w0", "w1", "w2", "w3"):
            ring.add(wid)
        counts = {}
        for i in range(1000):
            wid = ring.place(f"tenant-{i}")
            counts[wid] = counts.get(wid, 0) + 1
        assert len(counts) == 4
        # no worker owns more than half the keyspace with 64 vnodes
        assert max(counts.values()) < 500

    def test_empty_ring_raises(self):
        with pytest.raises(NoWorkersError):
            HashRing().place("tenant-0")

    def test_add_is_idempotent(self):
        ring = HashRing()
        ring.add("w0")
        ring.add("w0")
        assert len(ring) == 1 and ring.worker_ids == ["w0"]

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestPlacementAndLanes:
    def test_same_tenant_clients_colocate(self, serving_context, make_cluster):
        cluster = make_cluster(worker_count=4)
        tenants, clients, _ = multi_tenant_traffic(
            serving_context, tenant_count=4, clients_per_tenant=3,
            requests_per_client=1,
        )
        for t in tenants:
            t.register_with(cluster)
        for c in clients:
            c.connect_cluster(cluster)
        for c in clients:
            assert (
                cluster.client_worker(c.client_id)
                == cluster.worker_for(c.tenant.key_id)
            )

    def test_sharded_same_tenant_traffic_still_batches(
        self, serving_context, make_cluster
    ):
        """The point of key_id placement: a tenant's clients share one
        worker, so their keyed requests share batch lanes there."""
        cluster = make_cluster(worker_count=4)
        tenants, clients, trace = multi_tenant_traffic(
            serving_context, tenant_count=2, clients_per_tenant=4,
            requests_per_client=2, ops=[("square", 0)],
        )
        for t in tenants:
            t.register_with(cluster)
        for c in clients:
            c.connect_cluster(cluster)
        for cid, fr in trace:
            cluster.receive(cid, fr)
        cluster.drain()
        stats = cluster.worker_stats()
        batched = [f for s in stats.values() for f in s.flushes if f.batched]
        assert batched, "cross-client traffic produced no batched flushes"
        assert max(f.batch_size for f in batched) >= 4

    def test_unregistered_client_is_rejected(self, make_cluster):
        cluster = make_cluster(worker_count=2)
        with pytest.raises(UnknownClientError):
            cluster.receive("ghost", b"\x00")

    def test_unknown_tenant_is_rejected(self, make_cluster):
        cluster = make_cluster(worker_count=2)
        with pytest.raises(KeyError, match="register the tenant"):
            cluster.register_client("c0", "no-such-tenant")

    def test_reregistration_is_idempotent_but_keyid_is_sticky(
        self, serving_context, make_cluster
    ):
        cluster = make_cluster(worker_count=2)
        tenant = SyntheticTenant(serving_context, seed=11, key_id="t-a")
        other = SyntheticTenant(serving_context, seed=12, key_id="t-b")
        tenant.register_with(cluster)
        other.register_with(cluster)
        first = cluster.register_client("c0", "t-a")
        assert cluster.register_client("c0", "t-a") == first
        with pytest.raises(ValueError, match="registered under"):
            cluster.register_client("c0", "t-b")


class TestRouterAdmission:
    @pytest.fixture()
    def small_cluster(self, serving_context, make_cluster):
        cluster = make_cluster(worker_count=2)
        tenants, clients, trace = multi_tenant_traffic(
            serving_context, tenant_count=1, clients_per_tenant=1,
            requests_per_client=4,
        )
        for t in tenants:
            t.register_with(cluster)
        for c in clients:
            c.connect_cluster(cluster)
        return cluster, clients[0], trace

    def _one_error(self, cluster, client):
        (blob,) = cluster.take_outbox(client.client_id)
        frame = framing.decode_frame(blob)
        assert frame.kind == framing.ERROR
        return frame

    def test_non_request_kinds_are_errors(self, small_cluster):
        cluster, client, _ = small_cluster
        frame = framing.Frame(framing.RESPONSE, 9, client.client_id)
        cluster.receive_frame(client.client_id, frame)
        err = self._one_error(cluster, client)
        assert err.request_id == 9 and "REQUEST" in err.error_message
        assert cluster.report.submitted == 0

    def test_client_id_spoofing_is_an_error(self, small_cluster):
        cluster, client, trace = small_cluster
        frame = framing.decode_frame(trace[0][1])
        # the frame names the real client, the connection claims another
        cluster.register_client("impostor", client.tenant.key_id)
        cluster.receive_frame("impostor", frame)
        (blob,) = cluster.take_outbox("impostor")
        err = framing.decode_frame(blob)
        assert err.kind == framing.ERROR and "does not match" in err.error_message

    def test_duplicate_request_id_is_an_error(self, small_cluster):
        cluster, client, trace = small_cluster
        cluster.receive(client.client_id, trace[0][1])
        frame = framing.decode_frame(trace[0][1])
        cluster.receive_frame(client.client_id, frame)
        err = self._one_error(cluster, client)
        assert "already in flight" in err.error_message

    def test_latencies_are_recorded_on_the_router_clock(
        self, small_cluster, manual_clock
    ):
        cluster, client, trace = small_cluster
        for cid, fr in trace:
            cluster.receive(cid, fr)
        manual_clock.advance(0.25)
        cluster.pump()
        manual_clock.advance(0.25)
        cluster.pump()
        cluster.drain()
        assert len(cluster.report.latencies) == len(trace)
        assert all(0.25 <= lat <= 0.5 for lat in cluster.report.latencies)


@pytest.mark.slow
class TestProcessWorkers:
    """The deployment transport: real OS processes behind pipes."""

    def test_cluster_of_processes_serves_and_reports(self, serving_context):
        spec = WorkerSpec(params=serving_context.params, max_delay_seconds=1e-3)
        cluster = ServingCluster(
            lambda wid: ProcessWorkerHandle(wid, spec), worker_count=2
        )
        try:
            tenants, clients, trace = multi_tenant_traffic(
                serving_context, tenant_count=2, clients_per_tenant=2,
                requests_per_client=3,
            )
            for t in tenants:
                t.register_with(cluster)
            for c in clients:
                c.connect_cluster(cluster)
            for cid, fr in trace:
                cluster.receive(cid, fr)
            deadline = time.monotonic() + 60
            while cluster.inflight_count and time.monotonic() < deadline:
                cluster.pump()
                time.sleep(0.005)
            cluster.drain()
            assert cluster.inflight_count == 0
            total = 0
            for c in clients:
                for blob in cluster.take_outbox(c.client_id):
                    assert framing.decode_frame(blob).kind == framing.RESPONSE
                    total += 1
            assert total == len(trace)
            stats = cluster.worker_stats()
            assert sum(s.completed for s in stats.values()) == len(trace)
            assert all(s.errors == 0 for s in stats.values())
        finally:
            cluster.stop()

    def test_killed_process_fails_over(self, serving_context):
        spec = WorkerSpec(params=serving_context.params, max_delay_seconds=60.0)
        cluster = ServingCluster(
            lambda wid: ProcessWorkerHandle(wid, spec), worker_count=2
        )
        try:
            tenants, clients, trace = multi_tenant_traffic(
                serving_context, tenant_count=2, clients_per_tenant=1,
                requests_per_client=2,
            )
            for t in tenants:
                t.register_with(cluster)
            for c in clients:
                c.connect_cluster(cluster)
            # a huge deadline parks the requests in lanes: kill mid-flight
            for cid, fr in trace:
                cluster.receive(cid, fr)
            victim = cluster.client_worker(clients[0].client_id)
            failed = cluster.kill_worker(victim)
            assert failed > 0
            assert not cluster.workers[victim].alive
            cluster.drain()
            kinds = []
            for c in clients:
                kinds += [
                    framing.decode_frame(b).kind
                    for b in cluster.take_outbox(c.client_id)
                ]
            assert len(kinds) == len(trace)
            assert kinds.count(framing.ERROR) == failed
        finally:
            cluster.stop()


class TestFrontDoor:
    """The asyncio socket layer's connection protocol."""

    def _cluster(self, serving_context, tenants=2):
        # a real wall clock: the front-door's background pump loop is
        # what fires deadline flushes while connections sit idle
        spec = WorkerSpec(params=serving_context.params, max_delay_seconds=1e-3)
        cluster = ServingCluster(
            lambda wid: LocalWorkerHandle(wid, spec), worker_count=2
        )
        tenants_, clients, trace = multi_tenant_traffic(
            serving_context, tenant_count=tenants, clients_per_tenant=1,
            requests_per_client=3,
        )
        for t in tenants_:
            t.register_with(cluster)
        return cluster, clients, trace

    async def _roundtrip(self, door, client, frames, expect=None):
        reader, writer = await asyncio.open_connection(door.host, door.port)
        writer.write(
            framing.encode_frame(
                framing.HELLO, 0, client.client_id, op=client.tenant.key_id
            )
        )
        for fr in frames:
            writer.write(fr)
        await writer.drain()
        decoder = framing.FrameDecoder()
        got = []
        want = len(frames) if expect is None else expect
        while len(got) < want:
            data = await asyncio.wait_for(reader.read(1 << 16), timeout=10)
            if not data:
                break
            got.extend(decoder.feed(data))
        writer.close()
        await writer.wait_closed()
        return got

    def test_concurrent_clients_roundtrip(self, serving_context, make_cluster):
        cluster, clients, trace = self._cluster(serving_context)
        by_client = {}
        for cid, fr in trace:
            by_client.setdefault(cid, []).append(fr)

        async def main():
            async with AsyncFrontDoor(cluster) as door:
                results = await asyncio.gather(
                    *(
                        self._roundtrip(door, c, by_client[c.client_id])
                        for c in clients
                    )
                )
            return results

        results = asyncio.run(main())
        for c, frames in zip(clients, results):
            assert len(frames) == len(by_client[c.client_id])
            for f in frames:
                assert f.kind == framing.RESPONSE, f.error_message
                # decryptable: the payload really is this tenant's bits
                c.tenant.decrypt_response(
                    framing.encode_frame(
                        f.kind, f.request_id, f.client_id, f.op, f.op_arg,
                        f.payload,
                    )
                )

    def test_request_before_hello_is_an_error(self, serving_context, make_cluster):
        cluster, clients, trace = self._cluster(serving_context)

        async def main():
            async with AsyncFrontDoor(cluster) as door:
                reader, writer = await asyncio.open_connection(door.host, door.port)
                writer.write(trace[0][1])  # REQUEST with no HELLO first
                await writer.drain()
                data = await asyncio.wait_for(reader.read(1 << 16), timeout=10)
                writer.close()
                await writer.wait_closed()
                return framing.FrameDecoder().feed(data)

        (frame,) = asyncio.run(main())
        assert frame.kind == framing.ERROR
        assert "HELLO" in frame.error_message

    def test_hello_with_unknown_tenant_is_an_error(
        self, serving_context, make_cluster
    ):
        cluster, clients, _ = self._cluster(serving_context)

        async def main():
            async with AsyncFrontDoor(cluster) as door:
                reader, writer = await asyncio.open_connection(door.host, door.port)
                writer.write(
                    framing.encode_frame(framing.HELLO, 0, "c-x", op="nope")
                )
                await writer.drain()
                data = await asyncio.wait_for(reader.read(1 << 16), timeout=10)
                writer.close()
                await writer.wait_closed()
                return framing.FrameDecoder().feed(data)

        (frame,) = asyncio.run(main())
        assert frame.kind == framing.ERROR
        assert "key_id" in frame.error_message or "tenant" in frame.error_message

    def test_corrupt_stream_serves_good_frames_then_closes(
        self, serving_context, make_cluster
    ):
        cluster, clients, trace = self._cluster(serving_context)
        client = clients[0]
        mine = [fr for cid, fr in trace if cid == client.client_id]

        async def main():
            async with AsyncFrontDoor(cluster) as door:
                reader, writer = await asyncio.open_connection(door.host, door.port)
                writer.write(
                    framing.encode_frame(
                        framing.HELLO, 0, client.client_id,
                        op=client.tenant.key_id,
                    )
                )
                # one good frame, then garbage that can never resync
                writer.write(mine[0] + b"\xde\xad\xbe\xef" * 4)
                await writer.drain()
                decoder = framing.FrameDecoder()
                got = []
                while True:
                    data = await asyncio.wait_for(reader.read(1 << 16), timeout=10)
                    if not data:
                        break  # server closed on us, as it must
                    got.extend(decoder.feed(data))
                writer.close()
                await writer.wait_closed()
                return got

        frames = asyncio.run(main())
        # the good frame ahead of the corruption was still served
        assert [f.kind for f in frames] == [framing.RESPONSE]
