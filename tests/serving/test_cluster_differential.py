"""Differential testing: sharding must not change a single response bit.

The strongest correctness statement the front-door can make is that it
is *transparent*: a client cannot tell from the bytes it receives
whether its tenant was served by one worker or by a pool, because the
underlying guarantee -- batched execution is bit-identical to scalar
execution -- composes across any partitioning of the traffic into
workers, batch lanes and flush boundaries.

These tests replay one seeded multi-client trace against clusters of
different shapes (1 vs 4 workers, in-order vs interleaved faults) and
demand byte-identical response frames per client, on every backend this
process can instantiate.
"""

from __future__ import annotations

import pytest

from repro.ckks.backend import available_backends, use_backend
from repro.ckks.context import CkksContext, toy_parameters
from repro.serving import framing
from repro.serving.clock import ManualClock
from repro.serving.cluster import ServingCluster
from repro.serving.traffic import multi_tenant_traffic
from repro.serving.worker import LocalWorkerHandle, WorkerSpec


def run_trace(backend: str, worker_count: int, *, chunked: bool = False):
    """Serve the canonical trace on a fresh cluster; responses per client.

    Everything -- key material, ciphertexts, the cluster itself -- is
    rebuilt from seeds inside the chosen backend, so two calls share no
    state except determinism.
    """
    with use_backend(backend):
        context = CkksContext(toy_parameters(n=64, k=3, prime_bits=30))
        clock = ManualClock()
        spec = WorkerSpec(params=context.params, backend=backend)
        cluster = ServingCluster(
            lambda wid: LocalWorkerHandle(wid, spec, clock=clock),
            worker_count=worker_count,
            clock=clock,
        )
        tenants, clients, trace = multi_tenant_traffic(
            context, tenant_count=3, clients_per_tenant=2, requests_per_client=4
        )
        for t in tenants:
            t.register_with(cluster)
        for c in clients:
            c.connect_cluster(cluster)

        if chunked:
            # arbitrary re-chunking of each client stream: byte deliveries
            # are per-connection, so split frames mid-body
            for cid, fr in trace:
                mid = len(fr) // 3
                cluster.receive(cid, fr[:mid])
                cluster.receive(cid, fr[mid:])
        else:
            for cid, fr in trace:
                cluster.receive(cid, fr)
        # interleave pumps and deadline advances so batch compositions
        # differ between worker counts (partial lanes, deadline flushes)
        cluster.pump()
        clock.advance(0.001)
        cluster.pump()
        clock.advance(0.01)
        cluster.pump()
        cluster.drain()

        responses = {}
        for c in clients:
            frames = cluster.take_outbox(c.client_id)
            # order within a client may legitimately differ across
            # cluster shapes (different flush order); bytes may not
            responses[c.client_id] = sorted(frames)
        assert all(
            framing.decode_frame(b).kind == framing.RESPONSE
            for out in responses.values()
            for b in out
        )
        return responses, trace


@pytest.mark.parametrize("backend", available_backends())
class TestShardingTransparency:
    def test_one_vs_four_workers_bit_identical(self, backend):
        single, trace = run_trace(backend, worker_count=1)
        sharded, _ = run_trace(backend, worker_count=4)
        assert single.keys() == sharded.keys()
        for client_id in single:
            assert single[client_id] == sharded[client_id], (
                f"client {client_id} saw different bytes from the "
                "sharded cluster"
            )
        # and every request was answered
        assert sum(len(v) for v in single.values()) == len(trace)

    def test_stream_chunking_does_not_change_bits(self, backend):
        whole, _ = run_trace(backend, worker_count=4)
        chunked, _ = run_trace(backend, worker_count=4, chunked=True)
        assert whole == chunked

    def test_worker_counts_sweep(self, backend):
        baseline, _ = run_trace(backend, worker_count=1)
        for workers in (2, 3, 8):
            assert run_trace(backend, worker_count=workers)[0] == baseline


def test_backends_agree_with_each_other():
    """Cross-backend differential: the same sharded trace decrypts to the
    same plaintext values everywhere (bytes differ only if a backend
    changes the wire format, which would be a bug in itself)."""
    backends = available_backends()
    if len(backends) < 2:
        pytest.skip("only one backend available")
    results = {b: run_trace(b, worker_count=4)[0] for b in backends}
    first, *rest = backends
    for other in rest:
        assert results[first] == results[other], (
            f"backends {first} and {other} serve different response bytes"
        )
