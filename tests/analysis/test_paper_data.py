"""Internal-consistency checks over the transcribed paper data."""

import math

import pytest

from repro.analysis.paper_data import (
    HEADLINE_SPEEDUP_RANGE,
    TABLE1_BOARDS,
    TABLE2_PARAM_SETS,
    TABLE3_CORES,
    TABLE4_MODULES,
    TABLE4_SHELLS,
    TABLE5_LAYOUTS,
    TABLE6_DESIGNS,
    TABLE7_LOW_LEVEL,
    TABLE8_HIGH_LEVEL,
)


class TestTableShapes:
    def test_counts(self):
        assert len(TABLE1_BOARDS) == 2
        assert len(TABLE2_PARAM_SETS) == 3
        assert len(TABLE3_CORES) == 3
        assert len(TABLE4_MODULES) == 12
        assert len(TABLE5_LAYOUTS) == 4
        assert len(TABLE6_DESIGNS) == 4
        assert len(TABLE7_LOW_LEVEL) == 4
        assert len(TABLE8_HIGH_LEVEL) == 4


class TestInternalConsistency:
    def test_table2_k_matches_n_scaling(self):
        """k doubles with each n doubling across the sets."""
        sets = sorted(TABLE2_PARAM_SETS.values(), key=lambda s: s.n)
        for a, b in zip(sets, sets[1:]):
            assert b.n == 2 * a.n
            assert b.k == 2 * a.k

    def test_table4_dsp_is_cores_times_core_dsp(self):
        for (kind, nc), row in TABLE4_MODULES.items():
            core_dsp = {"mult": 22, "ntt": 10, "intt": 10}[kind]
            assert row.dsp == nc * core_dsp

    def test_table4_printed_cycle_typos_flagged(self):
        """MULT 16/32-core rows print half the model value (DESIGN.md §5)."""
        for nc in (16, 32):
            row = TABLE4_MODULES[("mult", nc)]
            assert row.cycles_model == 4096 // nc
            assert row.cycles == row.cycles_model // 2
        for nc in (4, 8):
            row = TABLE4_MODULES[("mult", nc)]
            assert row.cycles == row.cycles_model

    def test_table4_ntt_cycles_match_formula(self):
        for nc in (4, 8, 16, 32):
            assert TABLE4_MODULES[("ntt", nc)].cycles == 4096 * 12 // (2 * nc)

    def test_table6_percentages_recompute(self):
        """Printed utilization percentages agree with Table 1 budgets."""
        for (dev, _), row in TABLE6_DESIGNS.items():
            board = TABLE1_BOARDS[dev]
            assert row.dsp_pct == pytest.approx(100 * row.dsp / board.dsp, abs=1.5)
            assert row.m20k_pct == pytest.approx(100 * row.m20k / board.m20k, abs=1.5)

    def test_table7_speedups_recompute(self):
        for row in TABLE7_LOW_LEVEL.values():
            assert row.ntt_speedup == pytest.approx(row.ntt_heax / row.ntt_cpu, abs=0.06)
            assert row.dyadic_speedup == pytest.approx(
                row.dyadic_heax / row.dyadic_cpu, abs=0.06
            )

    def test_table8_speedups_recompute(self):
        for row in TABLE8_HIGH_LEVEL.values():
            assert row.keyswitch_speedup == pytest.approx(
                row.keyswitch_heax / row.keyswitch_cpu, abs=0.4
            )
            assert row.multrelin_speedup == pytest.approx(
                row.multrelin_heax / row.multrelin_cpu, abs=0.4
            )

    def test_headline_range_from_table8(self):
        """The abstract's 164-268x comes from Stratix Table 8 speedups."""
        lo, hi = HEADLINE_SPEEDUP_RANGE
        stratix = [
            s
            for (dev, _), row in TABLE8_HIGH_LEVEL.items()
            if dev == "Stratix10"
            for s in (row.keyswitch_speedup, row.multrelin_speedup)
        ]
        assert round(min(stratix)) == lo  # 163.5 rounds to the quoted 164
        assert math.floor(max(stratix)) == hi

    def test_cpu_columns_identical_across_devices_set_a(self):
        """Both Set-A rows measured the same CPU."""
        a = TABLE7_LOW_LEVEL[("Arria10", "Set-A")]
        s = TABLE7_LOW_LEVEL[("Stratix10", "Set-A")]
        assert (a.ntt_cpu, a.intt_cpu, a.dyadic_cpu) == (s.ntt_cpu, s.intt_cpu, s.dyadic_cpu)

    def test_shells_present_for_both_devices(self):
        assert set(TABLE4_SHELLS) == {"Arria10", "Stratix10"}
