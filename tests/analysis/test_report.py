"""Tests for table rendering and comparison helpers."""

import pytest

from repro.analysis.report import (
    comparison_table,
    ratio_within,
    render_table,
    shape_preserved,
)


class TestRenderTable:
    def test_contains_title_and_headers(self):
        out = render_table("T", ["a", "b"], [[1, 2], [3, 4]])
        assert "== T ==" in out
        assert "a" in out and "b" in out

    def test_rows_formatted_with_thousands(self):
        out = render_table("T", ["x"], [[1234567]])
        assert "1,234,567" in out

    def test_note_appended(self):
        out = render_table("T", ["x"], [[1]], note="hello")
        assert out.endswith("note: hello")

    def test_float_formatting(self):
        out = render_table("T", ["x"], [[3.14159], [12345.6]])
        assert "3.14" in out
        assert "12,346" in out


class TestComparisonTable:
    def test_ratio_column(self):
        out = comparison_table(
            "C",
            [{"label": "x", "paper": 100, "measured": 95}],
        )
        assert "0.950" in out

    def test_multiple_rows(self):
        out = comparison_table(
            "C",
            [
                {"label": "a", "paper": 10, "measured": 10},
                {"label": "b", "paper": 20, "measured": 30},
            ],
        )
        assert "1.000" in out and "1.500" in out


class TestRatioWithin:
    def test_inside(self):
        assert ratio_within(105, 100, 0.10)

    def test_outside(self):
        assert not ratio_within(150, 100, 0.10)

    def test_zero_paper(self):
        assert ratio_within(0, 0, 0.1)
        assert not ratio_within(1, 0, 0.1)


class TestShapePreserved:
    def test_same_ordering(self):
        assert shape_preserved([1, 5, 3], [10, 50, 30])

    def test_crossed_ordering(self):
        assert not shape_preserved([1, 5, 3], [10, 50, 60])

    def test_scaled_series(self):
        paper = [488, 97656, 22536, 2616]
        measured = [x * 0.9 for x in paper]
        assert shape_preserved(paper, measured)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            shape_preserved([1], [1, 2])
