"""Unit and property tests for the negacyclic NTT (Algorithms 3 and 4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks.modarith import Modulus
from repro.ckks.ntt import (
    NTTTables,
    bit_reverse,
    bit_reverse_permutation,
    negacyclic_convolution_reference,
)
from repro.ckks.primes import generate_ntt_primes

N = 64
P = generate_ntt_primes(N, 30, 1)[0]


@pytest.fixture(scope="module")
def tables():
    return NTTTables(N, Modulus(P))


def rand_poly(rng, n=N, p=P):
    return [rng.randrange(p) for _ in range(n)]


class TestBitReverse:
    def test_simple(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011

    def test_involution(self):
        for v in range(64):
            assert bit_reverse(bit_reverse(v, 6), 6) == v

    def test_permutation_involution(self):
        vals = list(range(32))
        assert bit_reverse_permutation(bit_reverse_permutation(vals)) == vals

    def test_permutation_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reverse_permutation([1, 2, 3])


class TestRoundTrip:
    def test_forward_inverse_identity(self, tables):
        rng = random.Random(1)
        a = rand_poly(rng)
        assert tables.inverse(tables.forward(a)) == a

    def test_inverse_forward_identity(self, tables):
        rng = random.Random(2)
        a = rand_poly(rng)
        assert tables.forward(tables.inverse(a)) == a

    def test_zero_fixed_point(self, tables):
        zero = [0] * N
        assert tables.forward(zero) == zero
        assert tables.inverse(zero) == zero

    def test_constant_polynomial(self, tables):
        # NTT of the constant poly c is the all-c vector (evaluations).
        c = 12345 % P
        a = [c] + [0] * (N - 1)
        assert tables.forward(a) == [c] * N

    @given(st.lists(st.integers(min_value=0, max_value=P - 1), min_size=N, max_size=N))
    @settings(max_examples=50)
    def test_roundtrip_property(self, tables, coeffs):
        assert tables.inverse(tables.forward(coeffs)) == coeffs


class TestLinearity:
    def test_additivity(self, tables):
        rng = random.Random(3)
        a, b = rand_poly(rng), rand_poly(rng)
        s = [(x + y) % P for x, y in zip(a, b)]
        fa, fb = tables.forward(a), tables.forward(b)
        fs = [(x + y) % P for x, y in zip(fa, fb)]
        assert tables.forward(s) == fs

    def test_scalar_multiplication(self, tables):
        rng = random.Random(4)
        a = rand_poly(rng)
        c = 9876543 % P
        scaled = [c * x % P for x in a]
        assert tables.forward(scaled) == [c * x % P for x in tables.forward(a)]


class TestNegacyclicConvolution:
    def test_matches_schoolbook(self, tables):
        rng = random.Random(5)
        a, b = rand_poly(rng), rand_poly(rng)
        assert tables.negacyclic_multiply(a, b) == negacyclic_convolution_reference(a, b, P)

    def test_x_times_xn_minus_1_wraps_negatively(self, tables):
        # X * X^(n-1) = X^n = -1 in R.
        x = [0, 1] + [0] * (N - 2)
        xn1 = [0] * (N - 1) + [1]
        prod = tables.negacyclic_multiply(x, xn1)
        expected = [P - 1] + [0] * (N - 1)
        assert prod == expected

    def test_multiplication_by_one(self, tables):
        rng = random.Random(6)
        a = rand_poly(rng)
        one = [1] + [0] * (N - 1)
        assert tables.negacyclic_multiply(a, one) == a

    def test_commutativity(self, tables):
        rng = random.Random(7)
        a, b = rand_poly(rng), rand_poly(rng)
        assert tables.negacyclic_multiply(a, b) == tables.negacyclic_multiply(b, a)

    @given(st.data())
    @settings(max_examples=20)
    def test_schoolbook_property_small(self, data):
        n = 16
        p = generate_ntt_primes(n, 20, 1)[0]
        t = NTTTables(n, Modulus(p))
        a = data.draw(st.lists(st.integers(0, p - 1), min_size=n, max_size=n))
        b = data.draw(st.lists(st.integers(0, p - 1), min_size=n, max_size=n))
        assert t.negacyclic_multiply(a, b) == negacyclic_convolution_reference(a, b, p)


class TestTableConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            NTTTables(48, Modulus(P))

    def test_rejects_incompatible_modulus(self):
        p = generate_ntt_primes(16, 20, 1)[0]
        # p = 1 mod 32 does not guarantee p = 1 mod 256
        if (p - 1) % 256:
            with pytest.raises(ValueError):
                NTTTables(128, Modulus(p))

    def test_rejects_bad_psi(self):
        with pytest.raises(ValueError):
            NTTTables(N, Modulus(P), psi=2)  # 2 is (almost surely) not a root

    def test_twiddles_have_mulred_ratios(self, tables):
        w = tables.root_powers[N // 2]
        assert w.ratio == (w.value << 54) // P

    def test_dyadic_equals_ring_product(self, tables):
        """Pointwise product in NTT domain == negacyclic product (the
        property MULT module relies on)."""
        rng = random.Random(8)
        a, b = rand_poly(rng), rand_poly(rng)
        fa, fb = tables.forward(a), tables.forward(b)
        dyadic = [x * y % P for x, y in zip(fa, fb)]
        assert tables.inverse(dyadic) == negacyclic_convolution_reference(a, b, P)


@pytest.mark.slow
class TestPaperScale:
    def test_n4096_roundtrip_52bit(self):
        n = 4096
        p = generate_ntt_primes(n, 52, 1)[0]
        t = NTTTables(n, Modulus(p))
        rng = random.Random(9)
        a = [rng.randrange(p) for _ in range(n)]
        assert t.inverse(t.forward(a)) == a
