"""Runtime mirror of the static R2 backend-conformance invariant.

``CountingBackend`` delegates, it does not inherit: any public kernel
of :class:`PolynomialBackend` it fails to define explicitly falls back
to a base-class default that re-expresses the operation through *other*
``self`` methods -- silently bypassing the inner backend's fused kernel
and mis-charging the operation count (the exact bug ``decompose``
had).  ``repro.lint``'s R2 rule catches this at the AST level; this
test catches it at runtime, so the invariant holds even for code the
linter cannot see (e.g. dynamically added methods).
"""

import inspect

from repro.ckks.backend.base import PolynomialBackend
from repro.ckks.backend.counting import CountingBackend
from repro.ckks.backend.numpy_backend import NumpyBackend
from repro.ckks.backend.reference import ReferenceBackend


def _public_kernels(cls):
    """Public instance-method names declared anywhere on ``cls``."""
    names = set()
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if isinstance(inspect.getattr_static(cls, name), (property, staticmethod, classmethod)):
            continue
        if inspect.isfunction(member):
            names.add(name)
    return names


def _own_methods(cls):
    """Public instance methods ``cls`` defines in its *own* body."""
    return {
        name
        for name, member in vars(cls).items()
        if not name.startswith("_") and inspect.isfunction(member)
    }


def test_counting_backend_wraps_every_base_kernel():
    base = _public_kernels(PolynomialBackend)
    wrapped = _own_methods(CountingBackend)
    missing = sorted(base - wrapped)
    assert not missing, (
        "CountingBackend inherits base defaults for %s -- inherited "
        "defaults re-derive the op through other self methods, corrupting "
        "both delegation and the counts" % missing
    )


def test_counting_backend_adds_no_unknown_kernels():
    base = _public_kernels(PolynomialBackend)
    extra = sorted(_own_methods(CountingBackend) - base - {"reset"})
    assert not extra, (
        "CountingBackend defines public methods outside the "
        "PolynomialBackend kernel surface: %s" % extra
    )


def _shape(fn):
    """Parameter names and kinds, annotations ignored -- the same
    comparison R2 performs on the AST (overrides may tighten type
    annotations, but not rename or reorder parameters)."""
    return tuple(
        (p.name, p.kind) for p in inspect.signature(fn).parameters.values()
    )


def test_backend_signatures_match_base():
    """Every override in every backend must keep the base parameter
    shape -- positional drift would break call sites that treat
    backends as interchangeable."""
    base_shapes = {
        name: _shape(inspect.getattr_static(PolynomialBackend, name))
        for name in _public_kernels(PolynomialBackend)
    }
    for backend in (ReferenceBackend, NumpyBackend, CountingBackend):
        for name, fn in vars(backend).items():
            if name.startswith("_") or not inspect.isfunction(fn):
                continue
            if name not in base_shapes:
                continue
            got = _shape(fn)
            assert got == base_shapes[name], (
                "%s.%s parameters %s drifted from base %s"
                % (backend.__name__, name, got, base_shapes[name])
            )
