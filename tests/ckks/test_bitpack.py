"""Property/fuzz tests for the v2 bit-packing kernels and seed expansion.

Wire format v2 stands on two cross-backend bit-exactness contracts:

* ``pack_rows_bits`` / ``unpack_rows_bits`` -- every residue row packs
  to exactly ``ceil(n * width / 8)`` bytes and round-trips losslessly at
  every modulus width, on every backend, producing byte-identical wire
  bytes; truncation or corruption at *any bit* never decodes silently
  (padding bits must be zero, residues must stay below their modulus);
* ``expand_uniform_poly`` -- the seed-expanded uniform column of a v2
  key must regenerate bit-identically everywhere, or a key uploaded
  from one backend decrypts to garbage on another.

Properties run over seeded ``random.Random`` cases only (no external
property-testing dependency; every run replays identical cases), the
convention of ``tests/serving/test_framing_property.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.ckks.backend.base import packed_row_bytes
from repro.ckks.backend.numpy_backend import NumpyBackend
from repro.ckks.backend.reference import ReferenceBackend
from repro.ckks.modarith import Modulus
from repro.ckks.sampling import KEY_SEED_BYTES, expand_uniform_poly

REF = ReferenceBackend()
NP = NumpyBackend()
BACKENDS = [REF, NP]

#: Odd bounds spanning every interesting width class: below/at/above
#: byte boundaries, the 30-bit toy primes, and the paper's 52-54-bit
#: range (capped at 52 so products fit the backends' uint64 paths).
WIDTH_BOUNDS = [
    3, 5, 13, 127, 255, 257, 8191, (1 << 29) + 11, (1 << 30) - 35,
    (1 << 51) + 129, (1 << 52) - 47,
]


def _random_rows(rng: random.Random, bounds, n):
    return [[rng.randrange(b) for _ in range(n)] for b in bounds]


# ----------------------------------------------------------------------
# round-trip at every width
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("width", range(2, 53))
    def test_every_width_roundtrips_on_both_backends(self, width):
        rng = random.Random(width)
        bound = (1 << width) - 1  # odd-ish bound of exactly this width
        n = 16
        rows = _random_rows(rng, [bound, bound], n)
        # force boundary values in: 0 and bound-1 must survive packing
        rows[0][0] = 0
        rows[0][1] = bound - 1
        blobs = []
        for be in BACKENDS:
            handle = be.from_rows([list(r) for r in rows])
            data = be.pack_rows_bits(handle, [bound, bound])
            assert len(data) == 2 * packed_row_bytes(n, width)
            back = be.unpack_rows_bits(data, n, [bound, bound])
            assert be.to_rows(back) == rows
            blobs.append(data)
        assert blobs[0] == blobs[1], "backends disagree on wire bytes"

    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_widths_across_rows(self, seed):
        rng = random.Random(1000 + seed)
        bounds = rng.sample(WIDTH_BOUNDS, rng.randrange(2, 6))
        n = rng.choice([8, 24, 64])
        rows = _random_rows(rng, bounds, n)
        blobs = []
        for be in BACKENDS:
            handle = be.from_rows([list(r) for r in rows])
            data = be.pack_rows_bits(handle, bounds)
            expected = sum(
                packed_row_bytes(n, b.bit_length()) for b in bounds
            )
            assert len(data) == expected
            back = be.unpack_rows_bits(data, n, bounds)
            assert be.to_rows(back) == rows
            blobs.append(data)
        assert blobs[0] == blobs[1]

    def test_pack_rejects_residue_at_or_above_bound(self):
        for be in BACKENDS:
            handle = be.from_rows([[0, 1, 7, 3]])
            with pytest.raises(ValueError):
                be.pack_rows_bits(handle, [7])  # 7 >= bound 7


# ----------------------------------------------------------------------
# truncation and corruption at every bit boundary
# ----------------------------------------------------------------------
class TestCorruption:
    def _packed(self, be, bounds, n, seed=7):
        rng = random.Random(seed)
        rows = _random_rows(rng, bounds, n)
        return be.pack_rows_bits(be.from_rows(rows), bounds)

    @pytest.mark.parametrize("be", BACKENDS, ids=lambda b: b.name)
    def test_every_truncation_raises(self, be):
        bounds = [(1 << 13) - 5, (1 << 30) - 35]
        data = self._packed(be, bounds, n=8)
        for cut in range(len(data)):
            with pytest.raises(ValueError):
                be.unpack_rows_bits(data[:cut], 8, bounds)

    @pytest.mark.parametrize("be", BACKENDS, ids=lambda b: b.name)
    def test_trailing_bytes_raise(self, be):
        bounds = [(1 << 13) - 5]
        data = self._packed(be, bounds, n=8)
        with pytest.raises(ValueError):
            be.unpack_rows_bits(data + b"\x00", 8, bounds)

    @pytest.mark.parametrize("be", BACKENDS, ids=lambda b: b.name)
    def test_bitflip_never_decodes_silently_out_of_range(self, be):
        """Flip every bit of a packed row: the decode either raises or
        yields residues all strictly below the bound -- corrupt padding
        bits and out-of-range residues are always caught."""
        bound = (1 << 29) + 11  # odd width, so rows carry padding bits
        n = 8
        data = self._packed(be, [bound], n)
        for bit in range(8 * len(data)):
            corrupt = bytearray(data)
            corrupt[bit // 8] ^= 1 << (7 - bit % 8)
            try:
                rows = be.to_rows(be.unpack_rows_bits(bytes(corrupt), n, [bound]))
            except ValueError:
                continue
            assert all(0 <= v < bound for v in rows[0])

    @pytest.mark.parametrize("be", BACKENDS, ids=lambda b: b.name)
    def test_nonzero_padding_bits_raise(self, be):
        """The zero pad completing the last byte is load-bearing: a set
        bit there is corruption, not slack."""
        bound = (1 << 29) + 11  # width 30 -> 8*30=240 bits, 0 pad at n=8
        n = 3  # 90 bits -> 6 padding bits in the last byte
        data = self._packed(be, [bound], n)
        assert len(data) == packed_row_bytes(n, 30)
        corrupt = bytearray(data)
        corrupt[-1] |= 0x01  # lowest padding bit
        with pytest.raises(ValueError, match="padding"):
            be.unpack_rows_bits(bytes(corrupt), n, [bound])


# ----------------------------------------------------------------------
# seeded key expansion
# ----------------------------------------------------------------------
class TestSeedExpansion:
    MODULI = [Modulus((1 << 30) - 35), Modulus((1 << 30) - 107)]

    def test_deterministic(self):
        seed = bytes(range(KEY_SEED_BYTES))
        a = expand_uniform_poly(seed, 3, 16, self.MODULI)
        b = expand_uniform_poly(seed, 3, 16, self.MODULI)
        assert a == b

    def test_index_and_seed_separate_streams(self):
        seed = bytes(range(KEY_SEED_BYTES))
        other = bytes(KEY_SEED_BYTES)
        assert expand_uniform_poly(seed, 0, 16, self.MODULI) != (
            expand_uniform_poly(seed, 1, 16, self.MODULI)
        )
        assert expand_uniform_poly(seed, 0, 16, self.MODULI) != (
            expand_uniform_poly(other, 0, 16, self.MODULI)
        )

    def test_wrong_seed_length_rejected(self):
        with pytest.raises(ValueError):
            expand_uniform_poly(b"short", 0, 16, self.MODULI)

    def test_residues_in_range(self):
        seed = b"\xab" * KEY_SEED_BYTES
        poly = expand_uniform_poly(seed, 0, 64, self.MODULI)
        for row, m in zip(poly.residues, self.MODULI):
            assert all(0 <= v < m.value for v in row)

    def test_bit_identical_across_backends(self):
        """The expansion is pure Python by construction, so the *wire
        bytes* of an expanded column agree across backends exactly."""
        from repro.ckks.backend import use_backend

        seed = b"\x5a" * KEY_SEED_BYTES
        blobs = []
        for name in ("reference", "numpy"):
            with use_backend(name):
                poly = expand_uniform_poly(seed, 2, 32, self.MODULI)
                blobs.append(tuple(tuple(r) for r in poly.residues))
        assert blobs[0] == blobs[1]
