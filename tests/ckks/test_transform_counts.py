"""Transform-count accounting for the hoisted key-switching fast path.

The acceptance contract of the hoisting work (ISSUE 4): a hoisted
matvec performs the Algorithm-7 fan-out -- ``O(L·(L+1))`` NTT rows --
**once**, while the pre-hoisting path pays it per rotation.  The
:class:`repro.ckks.backend.CountingBackend` makes both budgets exact,
closed-form quantities; these tests assert them to the row.

Cost model (ring at level ``L``, all counts in *rows*):

* ``decompose``: ``L`` INTTs (one per digit) + ``L²`` forward NTTs
  (each of the ``L`` digits fans out to the ``L`` extended-basis primes
  it is not already resident in) -- total ``L·(L+1)`` transforms.
* ``apply_keyswitch``: the Modulus Switch on both output polynomials,
  ``2`` INTTs + ``2L`` forward NTTs -- the only transforms a hoisted
  rotation pays per step.
* ``rotate_unhoisted``: coefficient-domain automorphism round trip
  (``2L + 2L``) + the fan-out (``L + L²``) + the Modulus Switch
  (``2 + 2L``) -- every row of it per rotation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks.backend import CountingBackend, available_backends
from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.linear import LinearEvaluator

N, K = 64, 3  # L = K at the top level
DIM = 8


@pytest.fixture(
    scope="module",
    params=[
        pytest.param(
            name,
            marks=pytest.mark.skipif(
                name not in available_backends(),
                reason=f"{name} unavailable",
            ),
        )
        for name in ("reference", "numpy")
    ],
)
def counted(request):
    be = CountingBackend(request.param)
    ctx = CkksContext(toy_parameters(n=N, k=K, prime_bits=30), backend=be)
    keygen = KeyGenerator(ctx, seed=31)
    encryptor = Encryptor(ctx, keygen.public_key(), seed=32)
    lin = LinearEvaluator(ctx)
    legacy = LinearEvaluator(ctx, use_hoisting=False)
    galois = keygen.galois_keys(range(1, DIM))
    ct = encryptor.encrypt(lin.encoder.encode(np.linspace(-1, 1, 32)))
    return {
        "backend": be,
        "ctx": ctx,
        "evaluator": Evaluator(ctx),
        "lin": lin,
        "legacy": legacy,
        "galois": galois,
        "ct": ct,
    }


def test_hoisted_rotations_pay_fanout_once(counted):
    be, ev = counted["backend"], counted["evaluator"]
    ct, gk = counted["ct"], counted["galois"]
    L = K
    steps = [1, 2, 3]
    R = len(steps)

    be.reset()
    ev.rotate_hoisted(ct, steps, gk)
    # fan-out once (L INTT + L^2 NTT), Modulus Switch per rotation
    assert be.counts["ntt_inverse"] == L + 2 * R
    assert be.counts["ntt_forward"] == L * L + 2 * L * R
    # permutations per rotation: L digit-stacks of L rows for each of
    # the L+1 extended moduli is (L+1)*L, plus the L rows of c0
    assert be.counts["ntt_permute"] == R * (L * (L + 1) + L)

    be.reset()
    for s in steps:
        ev.rotate_unhoisted(ct, s, gk)
    assert be.counts["ntt_inverse"] == R * (3 * L + 2)
    assert be.counts["ntt_forward"] == R * (L * L + 4 * L)
    assert be.counts["ntt_permute"] == 0


def test_scalar_rotate_is_the_single_step_hoisted_cost(counted):
    be, ev = counted["backend"], counted["evaluator"]
    L = K
    be.reset()
    ev.rotate(counted["ct"], 1, counted["galois"])
    assert be.transform_rows == L * (L + 1) + 2 * (L + 1)


def test_hoisted_matvec_transform_budget(counted):
    """The headline accounting: O(L·(L+1)) fan-out NTTs per matvec,
    not per rotation."""
    be = counted["backend"]
    ct, gk = counted["ct"], counted["galois"]
    L = K
    R = DIM - 1
    rng = np.random.default_rng(7)
    matrix = rng.uniform(0.1, 1.0, (DIM, DIM))  # every diagonal nonzero

    be.reset()
    counted["lin"].matvec_diagonal(matrix, ct, gk)
    hoisted_fwd = be.counts["ntt_forward"]
    hoisted_inv = be.counts["ntt_inverse"]
    # fan-out once + per-rotation Modulus Switch + DIM diagonal encodes
    # (L rows each) + the final rescale (2 polys, 1 INTT + L-1 NTTs)
    assert hoisted_inv == (L + 2 * R) + 2
    assert hoisted_fwd == (L * L + 2 * L * R) + DIM * L + 2 * (L - 1)

    be.reset()
    counted["legacy"].matvec_diagonal(matrix, ct, gk)
    legacy_fwd = be.counts["ntt_forward"]
    legacy_inv = be.counts["ntt_inverse"]
    assert legacy_inv == R * (3 * L + 2) + 2
    assert legacy_fwd == R * (L * L + 4 * L) + DIM * L + 2 * (L - 1)

    # the point of the exercise
    hoisted = hoisted_fwd + hoisted_inv
    legacy = legacy_fwd + legacy_inv
    assert hoisted < legacy / 2


def test_counting_backend_is_transparent(counted):
    """Instrumentation must not change a single bit."""
    ev, ct, gk = counted["evaluator"], counted["ct"], counted["galois"]
    plain_ctx = CkksContext(
        toy_parameters(n=N, k=K, prime_bits=30),
        backend=counted["backend"].inner,
    )
    plain_ev = Evaluator(plain_ctx)
    a = ev.rotate(ct, 2, gk)
    b = plain_ev.rotate(ct, 2, gk)
    assert [p.residues for p in a.polys] == [p.residues for p in b.polys]
