"""KeySwitch / relinearization tests (Algorithm 7) and key generation."""

import numpy as np
import pytest

from repro.ckks.keys import KeyGenerator
from repro.ckks.sampling import Sampler

VALS_A = np.array([1.0, -2.0, 0.5, 3.0])
VALS_B = np.array([0.25, 4.0, -1.5, 2.0])


def enc(encoder, encryptor, vals, **kw):
    return encryptor.encrypt(encoder.encode(vals, **kw))


def dec(encoder, decryptor, ct, n=4):
    return encoder.decode(decryptor.decrypt(ct))[:n]


class TestKeyGeneration:
    def test_secret_key_is_ternary(self, toy_context, keygen):
        s = toy_context.from_ntt(keygen.secret_key.poly)
        from repro.ckks.rns import RnsBasis

        basis = RnsBasis(s.moduli)
        for v in basis.compose_centered_rows(s.rows):
            assert v in (-1, 0, 1)

    def test_public_key_decrypts_to_noise(self, toy_context, keygen):
        """pk = SymEnc(0, s): b + a*s must be small (just the error)."""
        pk = keygen.public_key()
        s = keygen.secret_key.restricted(pk.b.moduli)
        acc = pk.b.add(pk.a.dyadic_multiply(s))
        coeff = toy_context.from_ntt(acc)
        from repro.ckks.rns import RnsBasis

        basis = RnsBasis(coeff.moduli)
        for v in basis.compose_centered_rows(coeff.rows):
            assert abs(v) < 64  # 6-sigma truncated gaussian

    def test_relin_key_digit_count(self, toy_context, relin_key):
        assert relin_key.digit_count == toy_context.k

    def test_relin_key_rows_over_key_basis(self, toy_context, relin_key):
        d0, d1 = relin_key.digit(0)
        assert d0.level_count == toy_context.k + 1
        assert d1.level_count == toy_context.k + 1

    def test_galois_key_set_membership(self, toy_context, galois_keys):
        elt = toy_context.galois_element_for_step(1)
        assert elt in galois_keys
        assert toy_context.conjugation_element in galois_keys
        with pytest.raises(KeyError):
            galois_keys.key_for_element(9999)


class TestRelinearize:
    def test_relinearized_product_decrypts(
        self, encoder, encryptor, decryptor, evaluator, relin_key
    ):
        prod = evaluator.multiply(
            enc(encoder, encryptor, VALS_A), enc(encoder, encryptor, VALS_B)
        )
        rel = evaluator.relinearize(prod, relin_key)
        assert rel.size == 2
        assert np.allclose(dec(encoder, decryptor, rel), VALS_A * VALS_B, atol=1e-2)

    def test_relinearize_preserves_scale(
        self, encoder, encryptor, evaluator, relin_key
    ):
        prod = evaluator.multiply(
            enc(encoder, encryptor, VALS_A), enc(encoder, encryptor, VALS_B)
        )
        rel = evaluator.relinearize(prod, relin_key)
        assert rel.scale == prod.scale

    def test_relinearize_requires_size3(
        self, encoder, encryptor, evaluator, relin_key
    ):
        ct = enc(encoder, encryptor, VALS_A)
        with pytest.raises(ValueError):
            evaluator.relinearize(ct, relin_key)

    def test_multiply_relin_fused(
        self, encoder, encryptor, decryptor, evaluator, relin_key
    ):
        out = evaluator.multiply_relin(
            enc(encoder, encryptor, VALS_A),
            enc(encoder, encryptor, VALS_B),
            relin_key,
        )
        assert out.size == 2
        assert np.allclose(dec(encoder, decryptor, out), VALS_A * VALS_B, atol=1e-2)

    def test_relinearize_at_lower_level(
        self, encoder, encryptor, decryptor, evaluator, relin_key
    ):
        """Keys generated at top level must work after rescaling."""
        a = enc(encoder, encryptor, VALS_A)
        b = enc(encoder, encryptor, VALS_B)
        ab = evaluator.rescale(evaluator.relinearize(evaluator.multiply(a, b), relin_key))
        # second product at level 2
        sq = evaluator.relinearize(evaluator.multiply(ab, ab), relin_key)
        assert sq.level_count == 2
        expected = (VALS_A * VALS_B) ** 2
        assert np.allclose(dec(encoder, decryptor, sq), expected, atol=0.1)


class TestKeySwitchCore:
    def test_keyswitch_requires_ntt_form(self, toy_context, evaluator, relin_key):
        from repro.ckks.poly import RnsPolynomial

        coeff = RnsPolynomial.from_int_coeffs(
            [1] * toy_context.n, toy_context.data_basis.moduli
        )
        with pytest.raises(ValueError):
            evaluator.keyswitch_polynomial(coeff, relin_key)

    def test_keyswitch_output_basis(self, toy_context, evaluator, relin_key):
        target = Sampler(5).uniform_residues(
            toy_context.n, toy_context.data_basis.moduli
        )
        f0, f1 = evaluator.keyswitch_polynomial(target, relin_key)
        assert f0.level_count == toy_context.k
        assert f1.level_count == toy_context.k
        assert f0.is_ntt and f1.is_ntt

    def test_keyswitch_semantics(self, toy_context, keygen, evaluator, relin_key):
        """f0 + f1*s ~ target * s^2: the defining key-switch identity."""
        ctx = toy_context
        target = Sampler(6).uniform_residues(ctx.n, ctx.data_basis.moduli)
        f0, f1 = evaluator.keyswitch_polynomial(target, relin_key)
        s = keygen.secret_key.restricted(ctx.data_basis.moduli)
        s2 = s.dyadic_multiply(s)
        lhs = f0.add(f1.dyadic_multiply(s))
        rhs = target.dyadic_multiply(s2)
        err = ctx.from_ntt(lhs.sub(rhs))
        from repro.ckks.rns import RnsBasis

        basis = RnsBasis(err.moduli)
        max_err = max(abs(v) for v in basis.compose_centered_rows(err.rows))
        # noise ~ n * p_i * e / P plus flooring error: comfortably below
        # a few thousand for the toy parameters, astronomically below q.
        assert max_err < basis.product // 2**40
