"""Unit tests for NTT-friendly prime generation and roots of unity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks.primes import (
    generate_ntt_primes,
    is_prime,
    make_modulus_chain,
    primitive_2nth_root,
    primitive_root,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 7919):
            assert is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 91, 561, 1105):  # includes Carmichael numbers
            assert not is_prime(c)

    def test_large_known_prime(self):
        assert is_prime((1 << 61) - 1)  # Mersenne prime M61

    def test_large_known_composite(self):
        assert not is_prime((1 << 61) - 3)

    def test_strong_pseudoprime_to_base_2(self):
        assert not is_prime(3215031751)  # SPSP to bases 2,3,5,7

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=200)
    def test_agrees_with_trial_division(self, n):
        trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
        assert is_prime(n) == trial


class TestGenerateNttPrimes:
    def test_congruence_and_size(self):
        for n in (64, 4096):
            for p in generate_ntt_primes(n, 30, 3):
                assert p % (2 * n) == 1
                assert p.bit_length() == 30
                assert is_prime(p)

    def test_distinct_and_descending(self):
        ps = generate_ntt_primes(128, 28, 4)
        assert len(set(ps)) == 4
        assert ps == sorted(ps, reverse=True)

    def test_deterministic(self):
        assert generate_ntt_primes(64, 30, 2) == generate_ntt_primes(64, 30, 2)

    def test_word_size_guard(self):
        with pytest.raises(ValueError):
            generate_ntt_primes(64, 53, 1, word_bits=54)

    def test_paper_sets_prime_sizes_exist(self):
        # Set-A needs 36/37-bit primes at n=2^12; Set-C 48/49-bit at 2^14.
        assert generate_ntt_primes(4096, 36, 2)
        assert generate_ntt_primes(16384, 49, 6)

    def test_exhaustion_raises(self):
        with pytest.raises(ValueError):
            generate_ntt_primes(512, 11, 50)  # few 11-bit primes = 1 mod 1024


class TestRoots:
    def test_primitive_root_generates_group(self):
        p = 97
        g = primitive_root(p)
        assert len({pow(g, e, p) for e in range(p - 1)}) == p - 1

    def test_2nth_root_property(self):
        n = 64
        p = generate_ntt_primes(n, 30, 1)[0]
        psi = primitive_2nth_root(p, n)
        assert pow(psi, n, p) == p - 1  # psi^n = -1
        assert pow(psi, 2 * n, p) == 1

    def test_minimal_root_is_minimal(self):
        n = 16
        p = generate_ntt_primes(n, 20, 1)[0]
        psi = primitive_2nth_root(p, n)
        # brute force over all elements
        candidates = [
            x for x in range(2, p) if pow(x, n, p) == p - 1
        ]
        assert psi == min(candidates)

    def test_rejects_bad_congruence(self):
        with pytest.raises(ValueError):
            primitive_2nth_root(97, 64)


class TestModulusChain:
    def test_mixed_bit_sizes(self):
        chain = make_modulus_chain(64, [30, 28, 30, 29])
        assert [m.bit_count for m in chain] == [30, 28, 30, 29]
        assert len({m.value for m in chain}) == 4

    def test_equal_sizes_are_distinct(self):
        chain = make_modulus_chain(64, [30, 30, 30])
        assert len({m.value for m in chain}) == 3
