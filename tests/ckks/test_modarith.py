"""Unit tests for Algorithms 1 and 2 (Barrett reduction, MulRed)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks.modarith import (
    HEAX_WORD_BITS,
    Modulus,
    MulRedConstant,
    SEAL_WORD_BITS,
    barrett_reduce,
    div2_mod,
    mul_red,
    precompute_mulred_ratios,
)
from repro.ckks.primes import generate_ntt_primes

P30 = generate_ntt_primes(64, 30, 1)[0]
P50 = generate_ntt_primes(4096, 50, 1)[0]


class TestBarrettReduce:
    def test_small_values_unchanged(self):
        m = Modulus(P30)
        for x in (0, 1, 17, P30 - 1):
            assert m.reduce(x) == x

    def test_matches_builtin_mod_at_extremes(self):
        m = Modulus(P30)
        for x in (P30, P30 + 1, 2 * P30 - 1, (P30 - 1) ** 2):
            assert m.reduce(x) == x % P30

    def test_double_word_inputs(self):
        m = Modulus(P50)
        x = (P50 - 1) ** 2
        assert m.reduce(x) == x % P50

    def test_explicit_function_form(self):
        u = (1 << (2 * 54)) // P50
        assert barrett_reduce(123456789123456789, P50, u, 54) == 123456789123456789 % P50

    @given(st.integers(min_value=0, max_value=(P30 - 1) ** 2))
    @settings(max_examples=300)
    def test_matches_builtin_mod_property(self, x):
        m = Modulus(P30)
        assert m.reduce(x) == x % P30


class TestMulRed:
    def test_matches_builtin(self):
        m = Modulus(P30)
        c = MulRedConstant(12345 % P30, m)
        for x in (0, 1, P30 - 1, 987654321 % P30):
            assert c.mul(x) == x * c.value % P30

    def test_zero_constant(self):
        m = Modulus(P30)
        c = MulRedConstant(0, m)
        assert c.mul(P30 - 1) == 0

    def test_requires_reduced_constant(self):
        m = Modulus(P30)
        with pytest.raises(ValueError):
            MulRedConstant(P30, m)

    def test_function_form_50bit(self):
        y = 0x3FFFFFFFFFF % P50
        y_prime = (y << 54) // P50
        for x in (1, P50 - 1, P50 // 2):
            assert mul_red(x, y, y_prime, P50, 54) == x * y % P50

    @given(
        st.integers(min_value=0, max_value=P30 - 1),
        st.integers(min_value=0, max_value=P30 - 1),
    )
    @settings(max_examples=300)
    def test_matches_builtin_property(self, x, y):
        m = Modulus(P30)
        assert MulRedConstant(y, m).mul(x) == x * y % P30

    def test_ratio_vector_precompute(self):
        m = Modulus(P30)
        values = [1, 2, 3, P30 - 1]
        ratios = precompute_mulred_ratios(values, m)
        assert ratios == [(v << 54) // P30 for v in values]


class TestModulus:
    def test_rejects_oversized_modulus(self):
        # Algorithm 2 needs p < 2^(w-2): a 53-bit prime is too big at w=54.
        with pytest.raises(ValueError):
            Modulus((1 << 53) + 5, HEAX_WORD_BITS)

    def test_word_size_bound_is_inclusive_of_52_bits(self):
        p52 = generate_ntt_primes(4096, 52, 1)[0]
        assert Modulus(p52, HEAX_WORD_BITS).value == p52

    def test_seal_word_size_accepts_60_bit(self):
        p60 = generate_ntt_primes(4096, 60, 1, word_bits=SEAL_WORD_BITS)[0]
        m = Modulus(p60, SEAL_WORD_BITS)
        assert m.reduce((p60 - 1) ** 2) == (p60 - 1) ** 2 % p60

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            Modulus(1)

    def test_add_sub_neg(self):
        m = Modulus(P30)
        assert m.add(P30 - 1, 1) == 0
        assert m.sub(0, 1) == P30 - 1
        assert m.neg(0) == 0
        assert m.neg(5) == P30 - 5

    def test_pow_and_inv(self):
        m = Modulus(P30)
        x = 123456789 % P30
        assert m.mul(x, m.inv(x)) == 1
        assert m.pow(x, P30 - 1) == 1  # Fermat

    def test_bit_count(self):
        assert Modulus(P30).bit_count == 30

    def test_reduce_signed(self):
        m = Modulus(P30)
        assert m.reduce_signed(-1) == P30 - 1
        assert m.reduce_signed(-P30) == 0


class TestDiv2:
    def test_even(self):
        assert div2_mod(10, P30) == 5

    def test_odd(self):
        m = Modulus(P30)
        x = 7
        assert m.mul(div2_mod(x, P30), 2) == x

    @given(st.integers(min_value=0, max_value=P30 - 1))
    @settings(max_examples=200)
    def test_doubling_roundtrip(self, x):
        m = Modulus(P30)
        assert m.mul(m.div2(x), 2) == x
