"""Paper-scale fidelity: the full CKKS pipeline on real Set-A parameters.

Runs the actual Table 2 Set-A instance (n = 4096, 36/36/37-bit primes,
128-bit-secure ring) through encode -> encrypt -> multiply ->
relinearize -> rescale -> rotate -> decrypt.  Slow (seconds, pure
Python) but it proves the library works at the sizes the paper
evaluates, not just on toy rings.
"""

import numpy as np
import pytest

from repro.ckks import (
    CkksContext,
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    SET_A,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def set_a():
    ctx = CkksContext(SET_A)
    kg = KeyGenerator(ctx, seed=2020)
    return {
        "ctx": ctx,
        "keygen": kg,
        "encoder": CkksEncoder(ctx),
        "encryptor": Encryptor(ctx, kg.public_key(), seed=1),
        "decryptor": Decryptor(ctx, kg.secret_key),
        "evaluator": Evaluator(ctx),
    }


class TestSetAPipeline:
    def test_parameters_are_the_paper_instance(self, set_a):
        ctx = set_a["ctx"]
        assert ctx.n == 4096
        assert ctx.k == 2
        assert ctx.params.total_modulus_bits == 109
        for m in ctx.key_basis:
            assert m.value % (2 * 4096) == 1
            assert m.value < 1 << 52

    def test_encrypt_decrypt(self, set_a):
        s = set_a
        rng = np.random.default_rng(0)
        vals = rng.uniform(-3, 3, 2048)  # fill all slots
        ct = s["encryptor"].encrypt(s["encoder"].encode(vals))
        out = s["encoder"].decode(s["decryptor"].decrypt(ct)).real
        assert np.allclose(out, vals, atol=1e-3)

    def test_multiply_relin_rescale(self, set_a):
        s = set_a
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, 8)
        y = rng.uniform(-1, 1, 8)
        cx = s["encryptor"].encrypt(s["encoder"].encode(x))
        cy = s["encryptor"].encrypt(s["encoder"].encode(y))
        relin = s["keygen"].relin_key()
        prod = s["evaluator"].rescale(
            s["evaluator"].multiply_relin(cx, cy, relin)
        )
        assert prod.level_count == 1
        out = s["encoder"].decode(s["decryptor"].decrypt(prod)).real[:8]
        assert np.allclose(out, x * y, atol=1e-2)

    def test_rotation(self, set_a):
        s = set_a
        keys = s["keygen"].galois_keys([1])
        vals = np.arange(16, dtype=float) / 8
        ct = s["encryptor"].encrypt(s["encoder"].encode(vals))
        rot = s["evaluator"].rotate(ct, 1, keys)
        out = s["encoder"].decode(s["decryptor"].decrypt(rot)).real[:15]
        assert np.allclose(out, vals[1:16], atol=1e-2)
