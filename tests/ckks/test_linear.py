"""Tests for the encrypted linear-algebra layer."""

import numpy as np
import pytest

from repro.ckks.linear import LinearEvaluator, reduction_steps


@pytest.fixture(scope="module")
def linear(toy_context):
    return LinearEvaluator(toy_context)


@pytest.fixture(scope="module")
def reduction_keys(keygen, toy_context):
    slots = toy_context.n // 2
    steps = set(reduction_steps(slots)) | set(range(1, 9))
    return keygen.galois_keys(sorted(steps))


def encrypt_vec(encoder, encryptor, vals, **kw):
    return encryptor.encrypt(encoder.encode(vals, **kw))


class TestReductionSteps:
    def test_powers_of_two(self):
        assert reduction_steps(8) == [1, 2, 4]
        assert reduction_steps(1) == []
        assert reduction_steps(2) == [1]


class TestRotateAndSum:
    def test_sums_all_slots(
        self, linear, encoder, encryptor, decryptor, reduction_keys
    ):
        rng = np.random.default_rng(0)
        vals = rng.uniform(-1, 1, encoder.slot_count)
        ct = encrypt_vec(encoder, encryptor, vals)
        out = linear.rotate_and_sum(ct, encoder.slot_count, reduction_keys)
        dec = encoder.decode(decryptor.decrypt(out)).real
        assert np.allclose(dec[0], vals.sum(), atol=0.05)

    def test_rejects_non_power_width(self, linear, encoder, encryptor, reduction_keys):
        ct = encrypt_vec(encoder, encryptor, [1.0])
        with pytest.raises(ValueError):
            linear.rotate_and_sum(ct, 3, reduction_keys)


class TestDotPlain:
    def test_matches_numpy(
        self, linear, encoder, encryptor, decryptor, reduction_keys
    ):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, 8)
        w = rng.uniform(-1, 1, 8)
        ct = encrypt_vec(encoder, encryptor, x)
        out = linear.dot_plain(ct, w, reduction_keys)
        dec = encoder.decode(decryptor.decrypt(out)).real
        assert np.isclose(dec[0], w @ x, atol=0.02)

    def test_non_power_of_two_width_padded(
        self, linear, encoder, encryptor, decryptor, reduction_keys
    ):
        x = np.array([1.0, 2.0, 3.0])
        w = np.array([0.5, -1.0, 2.0])
        ct = encrypt_vec(encoder, encryptor, x)
        out = linear.dot_plain(ct, w, reduction_keys)
        dec = encoder.decode(decryptor.decrypt(out)).real
        assert np.isclose(dec[0], w @ x, atol=0.02)


class TestMatvecDiagonal:
    def test_matches_numpy(
        self, linear, encoder, encryptor, decryptor, reduction_keys
    ):
        rng = np.random.default_rng(2)
        dim = 8
        m = rng.uniform(-1, 1, (dim, dim))
        x = rng.uniform(-1, 1, dim)
        # pack x cyclically so rotations wrap within the dim window:
        # replicate x across the first 2*dim slots
        slots = encoder.slot_count
        packed = np.zeros(slots)
        packed[:dim] = x
        packed[dim : 2 * dim] = x  # wrap margin for rotations < dim
        ct = encrypt_vec(encoder, encryptor, packed)
        out = linear.matvec_diagonal(m, ct, reduction_keys)
        dec = encoder.decode(decryptor.decrypt(out)).real[:dim]
        assert np.allclose(dec, m @ x, atol=0.05)

    def test_rejects_non_square(self, linear, encoder, encryptor, reduction_keys):
        ct = encrypt_vec(encoder, encryptor, [1.0])
        with pytest.raises(ValueError):
            linear.matvec_diagonal(np.zeros((2, 3)), ct, reduction_keys)

    def test_identity_matrix(
        self, linear, encoder, encryptor, decryptor, reduction_keys
    ):
        dim = 4
        x = np.array([1.0, -2.0, 0.5, 3.0])
        slots = encoder.slot_count
        packed = np.zeros(slots)
        packed[:dim] = x
        packed[dim : 2 * dim] = x
        ct = encrypt_vec(encoder, encryptor, packed)
        out = linear.matvec_diagonal(np.eye(dim), ct, reduction_keys)
        dec = encoder.decode(decryptor.decrypt(out)).real[:dim]
        assert np.allclose(dec, x, atol=0.02)


class TestWeightedSum:
    def test_affine_combination(
        self, linear, encoder, encryptor, decryptor
    ):
        a = np.array([1.0, 2.0])
        b = np.array([-0.5, 4.0])
        ca = encrypt_vec(encoder, encryptor, a)
        cb = encrypt_vec(encoder, encryptor, b)
        out = linear.weighted_sum([ca, cb], [2.0, -1.0])
        dec = encoder.decode(decryptor.decrypt(out)).real[:2]
        assert np.allclose(dec, 2 * a - b, atol=0.02)

    def test_length_mismatch(self, linear, encoder, encryptor):
        ct = encrypt_vec(encoder, encryptor, [1.0])
        with pytest.raises(ValueError):
            linear.weighted_sum([ct], [1.0, 2.0])


class TestEvaluatePolynomial:
    def test_degree2(self, linear, encoder, encryptor, decryptor, relin_key):
        x = np.array([0.5, -1.0, 0.25])
        ct = encrypt_vec(encoder, encryptor, x)
        out = linear.evaluate_polynomial(ct, [1.0, 2.0, 3.0], relin_key)
        dec = encoder.decode(decryptor.decrypt(out)).real[:3]
        assert np.allclose(dec, 1 + 2 * x + 3 * x**2, atol=0.05)

    def test_degree3_sigmoid_approx(self):
        """Degree 3 needs an extra level: run on a k=4 context."""
        from repro.ckks.context import CkksContext, toy_parameters
        from repro.ckks.encoder import CkksEncoder
        from repro.ckks.encryptor import Encryptor
        from repro.ckks.decryptor import Decryptor
        from repro.ckks.keys import KeyGenerator

        ctx = CkksContext(toy_parameters(n=64, k=4, prime_bits=30))
        kg = KeyGenerator(ctx, seed=4)
        enc = CkksEncoder(ctx)
        encryptor = Encryptor(ctx, kg.public_key(), seed=5)
        decryptor = Decryptor(ctx, kg.secret_key)
        lin = LinearEvaluator(ctx)
        coeffs = [0.5, 0.197, 0.0, -0.004]
        x = np.array([0.5, -2.0, 1.5])
        ct = encryptor.encrypt(enc.encode(x))
        out = lin.evaluate_polynomial(ct, coeffs, kg.relin_key())
        dec = enc.decode(decryptor.decrypt(out)).real[:3]
        expected = coeffs[0] + coeffs[1] * x + coeffs[3] * x**3
        assert np.allclose(dec, expected, atol=0.05)

    def test_insufficient_depth_raises(
        self, linear, encoder, encryptor, relin_key
    ):
        """Degree 3 on the k=3 fixture cannot absorb the coefficients."""
        ct = encrypt_vec(encoder, encryptor, [0.5])
        with pytest.raises(ValueError):
            linear.evaluate_polynomial(ct, [0.0, 1.0, 1.0, 1.0], relin_key)

    def test_rejects_constant(self, linear, encoder, encryptor, relin_key):
        ct = encrypt_vec(encoder, encryptor, [1.0])
        with pytest.raises(ValueError):
            linear.evaluate_polynomial(ct, [1.0], relin_key)


class TestOpCounts:
    def test_dot_plain_counts(self):
        counts = LinearEvaluator.op_counts("dot_plain", dim=8)
        assert counts == {"rotations": 3, "cp_mults": 1, "rescales": 1}

    def test_matvec_counts(self):
        counts = LinearEvaluator.op_counts("matvec_diagonal", dim=8)
        assert counts["rotations"] == 7
        assert counts["cp_mults"] == 8

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            LinearEvaluator.op_counts("conv2d")
