"""Backend equivalence: every backend must reproduce the reference bits.

The reference backend's scalar loops are the specification; the numpy
backend (and any future one) must produce *identical* rows for every
kernel.  Three layers of evidence:

1. property-style kernel tests (hypothesis-driven rows) for NTT
   round-trips and dyadic/scalar ops, in both prime regimes the numpy
   backend distinguishes (native ``p < 2^32`` multiply vs the
   float-assisted Barrett path for ``2^32 <= p < 2^52``);
2. scheme-level checks (keyswitch, rescale) on toy rings;
3. a full encrypt -> multiply -> relinearize -> decrypt pipeline at the
   paper's Set-A ring size ``n = 4096``, run once per backend with
   identical seeds, asserting bit-equal ciphertext and plaintext rows.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.backend import (
    available_backends,
    create_backend,
    default_backend_name,
    get_backend,
    set_backend,
    use_backend,
)
from repro.ckks.backend.reference import ReferenceBackend
from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.decryptor import Decryptor
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.ntt import NTTTables
from repro.ckks.primes import make_modulus_chain
from repro.ckks.sampling import Sampler

numpy_missing = "numpy" not in available_backends()
pytestmark = pytest.mark.skipif(
    numpy_missing, reason="numpy backend not available on this host"
)

N = 64

#: One modulus per numpy regime: a 30-bit prime exercises the native
#: uint64 multiply path, a 50-bit prime the float-assisted Barrett path.
SMALL_MOD = make_modulus_chain(N, [30], 54)[0]
LARGE_MOD = make_modulus_chain(N, [50], 54)[0]

REF = ReferenceBackend()


def _np():
    return create_backend("numpy")


def rows(modulus):
    return st.lists(
        st.integers(min_value=0, max_value=modulus.value - 1),
        min_size=N,
        max_size=N,
    )


# ---------------------------------------------------------------------------
# registry / selection
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_both_backends_registered(self):
        assert "reference" in available_backends()
        assert "numpy" in available_backends()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("fpga")

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        assert default_backend_name() == "reference"
        monkeypatch.setenv("REPRO_BACKEND", "verilog")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            default_backend_name()
        monkeypatch.delenv("REPRO_BACKEND")
        assert default_backend_name() == "numpy"

    def test_use_backend_restores_previous(self):
        before = get_backend()
        with use_backend("reference") as be:
            assert get_backend() is be
            assert be.name == "reference"
        assert get_backend() is before

    def test_set_backend_by_name_and_instance(self):
        before = get_backend()
        try:
            assert set_backend("reference").name == "reference"
            inst = _np()
            assert set_backend(inst) is inst
            with pytest.raises(TypeError):
                set_backend(3.14)
        finally:
            set_backend(before)

    def test_context_pins_backend(self):
        ctx = CkksContext(toy_parameters(n=N, k=1), backend="reference")
        assert ctx.backend.name == "reference"
        with use_backend("numpy"):
            assert ctx.backend.name == "reference"
        ctx_follow = CkksContext(toy_parameters(n=N, k=1))
        with use_backend("reference"):
            assert ctx_follow.backend.name == "reference"

    def test_pinned_backend_reaches_every_kernel(self):
        """A context-pinned backend must carry through keygen, encryption,
        evaluation and decryption -- not just the context's own NTTs."""
        calls = set()

        class SpyBackend(ReferenceBackend):
            name = "spy"

            def ntt_forward(self, tables, row):
                calls.add("ntt_forward")
                return super().ntt_forward(tables, row)

            def ntt_inverse(self, tables, row):
                calls.add("ntt_inverse")
                return super().ntt_inverse(tables, row)

            def dyadic_mul(self, modulus, a, b):
                calls.add("dyadic_mul")
                return super().dyadic_mul(modulus, a, b)

            def dyadic_mac(self, modulus, acc, x, y):
                calls.add("dyadic_mac")
                return super().dyadic_mac(modulus, acc, x, y)

            def dyadic_stack_reduce(self, modulus, x, y):
                calls.add("dyadic_stack_reduce")
                return super().dyadic_stack_reduce(modulus, x, y)

            def add(self, modulus, a, b):
                calls.add("add")
                return super().add(modulus, a, b)

            def scalar_mul(self, modulus, a, scalar):
                calls.add("scalar_mul")
                return super().scalar_mul(modulus, a, scalar)

            def scalar_mac(self, modulus, acc, a, scalar):
                calls.add("scalar_mac")
                return super().scalar_mac(modulus, acc, a, scalar)

            def reduce_mod(self, modulus, row):
                calls.add("reduce_mod")
                return super().reduce_mod(modulus, row)

        with use_backend("numpy"):  # the global the pin must override
            ctx = CkksContext(
                toy_parameters(n=N, k=2, prime_bits=30), backend=SpyBackend()
            )
            keygen = KeyGenerator(ctx, seed=21)
            encryptor = Encryptor(ctx, keygen.public_key(), seed=22)
            evaluator = Evaluator(ctx)
            encoder = CkksEncoder(ctx)
            ct = encryptor.encrypt(encoder.encode([1.0, 2.0]))
            ct2 = evaluator.relinearize(
                evaluator.multiply(ct, ct), keygen.relin_key()
            )
            Decryptor(ctx, keygen.secret_key).decrypt(evaluator.rescale(ct2))
        assert {
            "ntt_forward",
            "ntt_inverse",
            "dyadic_mul",
            "dyadic_stack_reduce",
            "add",
            "scalar_mul",
            "scalar_mac",
            "reduce_mod",
        } <= calls


# ---------------------------------------------------------------------------
# kernel equivalence (property-style)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("modulus", [SMALL_MOD, LARGE_MOD], ids=["30bit", "50bit"])
class TestKernelEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_ntt_roundtrip_matches_reference(self, modulus, data):
        row = data.draw(rows(modulus))
        tables = NTTTables(N, modulus)
        np_be = _np()
        fwd_ref = REF.ntt_forward(tables, row)
        fwd_np = np_be.ntt_forward(tables, row)
        assert fwd_np == fwd_ref
        assert np_be.ntt_inverse(tables, fwd_np) == row
        assert REF.ntt_inverse(tables, fwd_ref) == row
        # cross-backend round trip: forward on one, inverse on the other
        assert REF.ntt_inverse(tables, fwd_np) == row
        assert np_be.ntt_inverse(tables, fwd_ref) == row

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_dyadic_ops_match_reference(self, modulus, data):
        a = data.draw(rows(modulus))
        b = data.draw(rows(modulus))
        acc = data.draw(rows(modulus))
        np_be = _np()
        assert np_be.add(modulus, a, b) == REF.add(modulus, a, b)
        assert np_be.sub(modulus, a, b) == REF.sub(modulus, a, b)
        assert np_be.negate(modulus, a) == REF.negate(modulus, a)
        assert np_be.dyadic_mul(modulus, a, b) == REF.dyadic_mul(modulus, a, b)
        assert np_be.dyadic_mac(modulus, acc, a, b) == REF.dyadic_mac(
            modulus, acc, a, b
        )

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_scalar_ops_match_reference(self, modulus, data):
        a = data.draw(rows(modulus))
        acc = data.draw(rows(modulus))
        s = data.draw(st.integers(min_value=0, max_value=modulus.value - 1))
        np_be = _np()
        assert np_be.scalar_mul(modulus, a, s) == REF.scalar_mul(modulus, a, s)
        assert np_be.scalar_mac(modulus, acc, a, s) == REF.scalar_mac(
            modulus, acc, a, s
        )

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_base_conversion_matches_reference(self, modulus, data):
        # signed, multi-word coefficients force the exact big-int fallback;
        # word-sized ones take the vector path -- both must agree
        wide = data.draw(
            st.lists(
                st.integers(min_value=-(10**30), max_value=10**30),
                min_size=N,
                max_size=N,
            )
        )
        assert _np().reduce_mod(modulus, wide) == REF.reduce_mod(modulus, wide)
        word = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=2**63), min_size=N, max_size=N
            )
        )
        assert _np().reduce_mod(modulus, word) == REF.reduce_mod(modulus, word)


# ---------------------------------------------------------------------------
# scheme-level equivalence on toy rings
# ---------------------------------------------------------------------------
def _scheme_outputs(backend_name: str, n: int = N, k: int = 3):
    """Run a deterministic keygen/encrypt/evaluate trace on one backend."""
    with use_backend(backend_name):
        ctx = CkksContext(toy_parameters(n=n, k=k, prime_bits=30))
        keygen = KeyGenerator(ctx, seed=42)
        encryptor = Encryptor(ctx, keygen.public_key(), seed=43)
        evaluator = Evaluator(ctx)
        encoder = CkksEncoder(ctx)
        values = [complex(i / 7, -i / 11) for i in range(ctx.params.slot_count)]
        pt = encoder.encode(values)
        ct = encryptor.encrypt(pt)
        prod = evaluator.multiply(ct, ct)
        relin = evaluator.relinearize(prod, keygen.relin_key())
        rescaled = evaluator.rescale(relin)
        dec = Decryptor(ctx, keygen.secret_key).decrypt(rescaled)
        return {
            "ct": [p.residues for p in ct.polys],
            "relin": [p.residues for p in relin.polys],
            "rescaled": [p.residues for p in rescaled.polys],
            "plain": dec.poly.residues,
        }


def test_toy_pipeline_bit_equal_across_backends():
    ref = _scheme_outputs("reference")
    fast = _scheme_outputs("numpy")
    assert fast["ct"] == ref["ct"]
    assert fast["relin"] == ref["relin"]
    assert fast["rescaled"] == ref["rescaled"]
    assert fast["plain"] == ref["plain"]


def test_keyswitch_bit_equal_across_backends():
    def run(name):
        with use_backend(name):
            ctx = CkksContext(toy_parameters(n=N, k=3, prime_bits=30))
            keygen = KeyGenerator(ctx, seed=5)
            target = Sampler(6).uniform_residues(ctx.n, ctx.data_basis.moduli)
            f0, f1 = Evaluator(ctx).keyswitch_polynomial(target, keygen.relin_key())
            return f0.residues, f1.residues

    assert run("numpy") == run("reference")


# ---------------------------------------------------------------------------
# full pipeline at the paper's Set-A ring size
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_paper_scale_pipeline_bit_equal_at_n4096():
    """encrypt -> multiply -> relinearize -> decrypt at n = 4096.

    Same seeds, both backends, bit-identical rows end to end -- the
    acceptance gate for trusting numpy results at paper scale.
    """
    ref = _scheme_outputs("reference", n=4096, k=2)
    fast = _scheme_outputs("numpy", n=4096, k=2)
    assert fast["ct"] == ref["ct"]
    assert fast["relin"] == ref["relin"]
    assert fast["rescaled"] == ref["rescaled"]
    assert fast["plain"] == ref["plain"]


def test_random_rows_roundtrip_under_default_backend():
    """Whatever backend is active by default, NTT round-trips hold."""
    rng = random.Random(11)
    tables = NTTTables(N, SMALL_MOD)
    be = get_backend()
    for _ in range(5):
        row = [rng.randrange(SMALL_MOD.value) for _ in range(N)]
        assert be.ntt_inverse(tables, be.ntt_forward(tables, row)) == row
