"""Tests for the noise estimator, validated against measured noise."""

import numpy as np
import pytest

from repro.ckks.noise import ERROR_BOUND, NoiseBudget, NoiseEstimate, NoiseModel
from repro.ckks.poly import Plaintext
from repro.ckks.rns import RnsBasis


def measured_noise_bound(toy_context, decryptor, ct, reference_pt):
    """Max |error coefficient| between a decryption and its reference."""
    dec = decryptor.decrypt(ct)
    diff = dec.poly.sub(reference_pt.poly)
    coeff = toy_context.from_ntt(diff)
    basis = RnsBasis(coeff.moduli)
    return max(abs(v) for v in basis.compose_centered_rows(coeff.rows))


@pytest.fixture(scope="module")
def model(toy_context):
    return NoiseModel(toy_context)


class TestEstimateAlgebra:
    def test_precision_bits(self):
        est = NoiseEstimate(bound=2.0**8, scale=2.0**28, level_count=3)
        assert est.precision_bits == pytest.approx(20)

    def test_decryptable_check(self):
        est = NoiseEstimate(bound=2.0**8, scale=2.0**28, level_count=3)
        assert est.decryptable(q_bits=90)
        assert not est.decryptable(q_bits=25)

    def test_add_combines_bounds(self, model):
        a = model.fresh()
        s = model.add(a, a)
        assert s.bound == 2 * a.bound
        assert s.scale == a.scale

    def test_add_level_mismatch(self, model):
        a = model.fresh()
        b = NoiseEstimate(a.bound, a.scale, a.level_count - 1)
        with pytest.raises(ValueError):
            model.add(a, b)

    def test_rescale_divides_bound_and_scale(self, model, toy_context):
        a = model.fresh()
        prod = model.multiply(a, a)
        res = model.rescale(prod)
        dropped = toy_context.basis_at_level(prod.level_count).moduli[-1].value
        assert res.level_count == prod.level_count - 1
        assert res.scale == pytest.approx(prod.scale / dropped)
        assert res.bound < prod.bound


class TestAgainstMeasurement:
    def test_fresh_estimate_upper_bounds_measurement(
        self, toy_context, encoder, encryptor, decryptor, model
    ):
        pt = encoder.encode([1.0, -1.0, 0.5])
        ct = encryptor.encrypt(pt)
        measured = measured_noise_bound(toy_context, decryptor, ct, pt)
        est = model.fresh()
        assert measured <= est.bound
        # ... and not absurdly loose (within ~10 bits)
        assert est.bound < measured * 2**10

    def test_addition_estimate_tracks_measurement(
        self, toy_context, encoder, encryptor, decryptor, evaluator, model
    ):
        pt = encoder.encode([0.5])
        ct = encryptor.encrypt(pt)
        acc_ct, acc_pt = ct, pt
        est = model.fresh()
        for _ in range(3):
            acc_ct = evaluator.add(acc_ct, acc_ct)
            acc_pt = Plaintext(acc_pt.poly.add(acc_pt.poly), acc_pt.scale)
            est = model.add(est, est)
        measured = measured_noise_bound(toy_context, decryptor, acc_ct, acc_pt)
        assert measured <= est.bound

    def test_keyswitch_estimate_upper_bounds_measurement(
        self, toy_context, encoder, encryptor, decryptor, evaluator, relin_key, model
    ):
        vals = np.array([0.5, -0.25])
        ct1 = encryptor.encrypt(encoder.encode(vals))
        ct2 = encryptor.encrypt(encoder.encode(vals))
        prod = evaluator.relinearize(evaluator.multiply(ct1, ct2), relin_key)
        # reference: decrypt the size-3 product (its own noise is the
        # multiply noise; relin adds only the gadget noise on top)
        raw = evaluator.multiply(ct1, ct2)
        ref = decryptor.decrypt(raw)
        measured = measured_noise_bound(toy_context, decryptor, prod, ref)
        est = model.keyswitch(
            NoiseEstimate(0.0, prod.scale, prod.level_count)
        )
        assert measured <= est.bound * 2**6  # heuristic vs worst case slack
        assert measured > 0


class TestBudgetTracker:
    def test_trace_records_ops(self, toy_context):
        budget = NoiseBudget(toy_context)
        a = budget.fresh()
        b = budget.fresh()
        prod = budget.after("multiply", a, b)
        budget.after("rescale", prod)
        assert len(budget.trace) == 4
        assert budget.trace[0].startswith("fresh")

    def test_depth_capacity_positive_and_bounded(self, toy_context):
        budget = NoiseBudget(toy_context)
        depth = budget.depth_capacity()
        assert 1 <= depth <= toy_context.k - 1

    def test_error_bound_constant(self):
        assert ERROR_BOUND == 20  # ceil(6 * 3.2)
