"""Hoisted rotations and the NTT-domain key-switching fast path.

Covers the contracts the fast path rests on:

* the NTT-domain Galois automorphism is bit-identical to the
  coefficient-domain round trip, on both backends;
* ``decompose`` + ``apply_keyswitch`` is bit-identical to the
  historical single-loop key switch;
* ``rotate_hoisted`` is bit-identical to the scalar ``rotate`` path
  (which shares its digit-permuting dataflow) on both backends, across
  edge cases: step 0, conjugation, the last level, repeated steps;
* the pre-hoisting baseline (``rotate_unhoisted``, coefficient-domain
  automorphism + per-digit loop) decrypts to the same rotation -- it
  uses the ``[0, p)`` gadget representative where hoisting uses the
  centered one, so equality is at the decryption level, not the bit
  level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks.backend import available_backends, use_backend
from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.decryptor import Decryptor
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.linear import LinearEvaluator

BACKENDS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            name not in available_backends(), reason=f"{name} unavailable"
        ),
    )
    for name in ("reference", "numpy")
]

STEPS = [1, 2, 5]


def _stack(backend_name, n=64, k=3, seed=99):
    with use_backend(backend_name):
        ctx = CkksContext(toy_parameters(n=n, k=k, prime_bits=30))
        keygen = KeyGenerator(ctx, seed=seed)
        encryptor = Encryptor(ctx, keygen.public_key(), seed=seed + 1)
        return {
            "ctx": ctx,
            "keygen": keygen,
            "encryptor": encryptor,
            "encoder": CkksEncoder(ctx),
            "decryptor": Decryptor(ctx, keygen.secret_key),
            "evaluator": Evaluator(ctx),
            "galois": keygen.galois_keys([0] + STEPS, conjugation=True),
        }


def rows(ct):
    return [p.residues for p in ct.polys]


@pytest.fixture(scope="module", params=BACKENDS)
def stack(request):
    s = _stack(request.param)
    s["backend"] = request.param
    return s


@pytest.fixture(scope="module")
def ct(stack):
    vals = np.arange(32) * 0.05 - 0.8
    with use_backend(stack["backend"]):
        return stack["encryptor"].encrypt(stack["encoder"].encode(vals))


class TestNttDomainGalois:
    def test_matches_coefficient_domain_round_trip(self, stack, ct):
        ctx = stack["ctx"]
        with use_backend(stack["backend"]):
            for elt in [ctx.galois_element_for_step(s) for s in STEPS] + [
                ctx.conjugation_element
            ]:
                fast = ctx.apply_galois_ntt(ct.polys[1], elt)
                slow = ctx.to_ntt(
                    ctx.apply_galois(ctx.from_ntt(ct.polys[1]), elt)
                )
                assert fast == slow

    def test_identity_element(self, stack, ct):
        with use_backend(stack["backend"]):
            assert stack["ctx"].apply_galois_ntt(ct.polys[0], 1) == ct.polys[0]

    def test_rejects_coefficient_form(self, stack, ct):
        ctx = stack["ctx"]
        with use_backend(stack["backend"]):
            coeff = ctx.from_ntt(ct.polys[0])
            with pytest.raises(ValueError, match="NTT-form"):
                ctx.apply_galois_ntt(coeff, 3)

    def test_rejects_even_element(self, stack):
        with pytest.raises(ValueError, match="odd"):
            stack["ctx"].galois_map_ntt(4)


class TestTwoPhaseKeySwitch:
    def test_matches_unhoisted_loop(self, stack, ct):
        """decompose + apply == the historical (i, j) double loop, bitwise."""
        ev = stack["evaluator"]
        with use_backend(stack["backend"]):
            relin = stack["keygen"].relin_key()
            prod = ev.multiply(ct, ct)
            fast = ev.keyswitch_polynomial(prod.polys[2], relin)
            slow = ev.keyswitch_polynomial_unhoisted(prod.polys[2], relin)
        assert fast[0] == slow[0] and fast[1] == slow[1]

    def test_digits_are_reusable(self, stack, ct):
        """One decomposition applied twice gives identical results."""
        ev = stack["evaluator"]
        with use_backend(stack["backend"]):
            relin = stack["keygen"].relin_key()
            prod = ev.multiply(ct, ct)
            digits = ev.decompose(prod.polys[2])
            a = ev.apply_keyswitch(digits, relin)
            b = ev.apply_keyswitch(digits, relin)
        assert a[0] == b[0] and a[1] == b[1]

    def test_decompose_rejects_coefficient_form(self, stack, ct):
        with use_backend(stack["backend"]):
            coeff = stack["ctx"].from_ntt(ct.polys[1])
            with pytest.raises(ValueError, match="NTT-form"):
                stack["evaluator"].decompose(coeff)

    def test_stacked_key_columns_are_cached(self, stack):
        with use_backend(stack["backend"]):
            ctx = stack["ctx"]
            relin = stack["keygen"].relin_key()
            be = ctx.backend
            ext = list(ctx.key_basis.moduli)
            first = relin.stacked_columns(ext, be)
            again = relin.stacked_columns(ext, be)
        assert first is again

    def test_stacked_key_columns_reject_bad_level(self, stack):
        with use_backend(stack["backend"]):
            ctx = stack["ctx"]
            relin = stack["keygen"].relin_key()
            too_deep = list(ctx.key_basis.moduli) + [ctx.special_modulus]
            with pytest.raises(ValueError, match="digits"):
                relin.stacked_columns(too_deep, ctx.backend)


class TestHoistedRotation:
    def test_bit_identical_to_scalar_rotate(self, stack, ct):
        ev, gk = stack["evaluator"], stack["galois"]
        with use_backend(stack["backend"]):
            hoisted = ev.rotate_hoisted(ct, STEPS, gk)
            scalar = [ev.rotate(ct, s, gk) for s in STEPS]
        for h, s in zip(hoisted, scalar):
            assert rows(h) == rows(s)
            assert h.scale == s.scale

    def test_step_zero(self, stack, ct):
        ev, gk = stack["evaluator"], stack["galois"]
        with use_backend(stack["backend"]):
            hoisted = ev.rotate_hoisted(ct, [0], gk)[0]
            scalar = ev.rotate(ct, 0, gk)
        assert rows(hoisted) == rows(scalar)

    def test_conjugation_hoisted(self, stack, ct):
        ev, gk, ctx = stack["evaluator"], stack["galois"], stack["ctx"]
        with use_backend(stack["backend"]):
            hoisted = ev.apply_galois_hoisted(
                ct, [ctx.conjugation_element], gk
            )[0]
            scalar = ev.conjugate(ct, gk)
        assert rows(hoisted) == rows(scalar)

    def test_last_level(self, stack, ct):
        """Hoisting at level 1: a single gadget digit, empty fan-out rows."""
        ev, gk = stack["evaluator"], stack["galois"]
        with use_backend(stack["backend"]):
            low = ev.rescale(ev.rescale(ct))
            assert low.level_count == 1
            hoisted = ev.rotate_hoisted(low, STEPS, gk)
            scalar = [ev.rotate(low, s, gk) for s in STEPS]
        for h, s in zip(hoisted, scalar):
            assert rows(h) == rows(s)

    def test_repeated_steps_share_results(self, stack, ct):
        ev, gk = stack["evaluator"], stack["galois"]
        with use_backend(stack["backend"]):
            twice = ev.rotate_hoisted(ct, [2, 2], gk)
        assert rows(twice[0]) == rows(twice[1])

    def test_requires_size_two(self, stack, ct):
        ev, gk = stack["evaluator"], stack["galois"]
        with use_backend(stack["backend"]):
            prod = ev.multiply(ct, ct)
            with pytest.raises(ValueError, match="relinearize"):
                ev.rotate_hoisted(prod, [1], gk)

    def test_decrypts_to_the_rotation(self, stack, ct):
        ev, gk = stack["evaluator"], stack["galois"]
        enc, dec = stack["encoder"], stack["decryptor"]
        vals = np.arange(32) * 0.05 - 0.8
        with use_backend(stack["backend"]):
            for step, rot in zip(STEPS, ev.rotate_hoisted(ct, STEPS, gk)):
                out = enc.decode(dec.decrypt(rot)).real
                np.testing.assert_allclose(
                    out, np.roll(vals, -step), atol=1e-2
                )

    def test_unhoisted_baseline_same_rotation(self, stack, ct):
        """The legacy path uses the other gadget representative: equal as
        a rotation (decryption), intentionally not bit-equal."""
        ev, gk = stack["evaluator"], stack["galois"]
        enc, dec = stack["encoder"], stack["decryptor"]
        with use_backend(stack["backend"]):
            a = enc.decode(dec.decrypt(ev.rotate(ct, 2, gk)))
            b = enc.decode(dec.decrypt(ev.rotate_unhoisted(ct, 2, gk)))
        np.testing.assert_allclose(a, b, atol=1e-2)


class TestCrossBackend:
    @pytest.mark.skipif(
        "numpy" not in available_backends(), reason="numpy unavailable"
    )
    def test_hoisted_rotation_identical_across_backends(self):
        vals = np.arange(32) * 0.05 - 0.8
        traces = {}
        for name in ("reference", "numpy"):
            s = _stack(name)
            with use_backend(name):
                c = s["encryptor"].encrypt(s["encoder"].encode(vals))
                traces[name] = [
                    rows(r)
                    for r in s["evaluator"].rotate_hoisted(
                        c, STEPS + [0], s["galois"]
                    )
                ]
        assert traces["reference"] == traces["numpy"]


class TestHoistedMatvec:
    def _matrix(self, dim, zero_diags=(3, 7)):
        rng = np.random.default_rng(11)
        m = rng.uniform(-1, 1, (dim, dim))
        i = np.arange(dim)
        for d in zero_diags:
            m[i, (i + d) % dim] = 0.0
        return m

    def test_matches_plain_matvec(self, stack):
        dim = 32
        with use_backend(stack["backend"]):
            lin = LinearEvaluator(stack["ctx"])
            gk = stack["keygen"].galois_keys(range(1, dim))
            x = np.linspace(-1, 1, dim)
            m = self._matrix(dim)
            ct = stack["encryptor"].encrypt(lin.encoder.encode(x))
            y = lin.matvec_diagonal(m, ct, gk)
            out = lin.encoder.decode(stack["decryptor"].decrypt(y))[:dim].real
        np.testing.assert_allclose(out, m @ x, atol=2e-2)
        assert y.level_count == ct.level_count - 1

    def test_hoisted_equals_unhoisted_numerically(self, stack):
        dim = 32
        with use_backend(stack["backend"]):
            hoisted = LinearEvaluator(stack["ctx"])
            legacy = LinearEvaluator(stack["ctx"], use_hoisting=False)
            gk = stack["keygen"].galois_keys(range(1, dim))
            x = np.linspace(-0.9, 0.7, dim)
            m = self._matrix(dim)
            ct = stack["encryptor"].encrypt(hoisted.encoder.encode(x))
            a = hoisted.encoder.decode(
                stack["decryptor"].decrypt(hoisted.matvec_diagonal(m, ct, gk))
            )[:dim].real
            b = legacy.encoder.decode(
                stack["decryptor"].decrypt(legacy.matvec_diagonal(m, ct, gk))
            )[:dim].real
        np.testing.assert_allclose(a, b, atol=1e-2)
        np.testing.assert_allclose(a, m @ x, atol=2e-2)

    def test_zero_matrix_burns_level_and_scale(self, stack):
        dim = 8
        with use_backend(stack["backend"]):
            lin = LinearEvaluator(stack["ctx"])
            gk = stack["keygen"].galois_keys(range(1, dim))
            x = np.linspace(-1, 1, dim)
            ct = stack["encryptor"].encrypt(lin.encoder.encode(x))
            y = lin.matvec_diagonal(np.zeros((dim, dim)), ct, gk)
            out = lin.encoder.decode(stack["decryptor"].decrypt(y))[:dim].real
        assert y.level_count == ct.level_count - 1
        np.testing.assert_allclose(out, np.zeros(dim), atol=1e-2)

    def test_zero_diagonals_need_no_keys(self, stack):
        """Skipped diagonals never request their rotation keys."""
        dim = 8
        with use_backend(stack["backend"]):
            lin = LinearEvaluator(stack["ctx"])
            # diagonal pattern: only d = 0 and d = 2 nonzero
            m = np.zeros((dim, dim))
            i = np.arange(dim)
            m[i, i] = 1.0
            m[i, (i + 2) % dim] = 0.5
            gk = stack["keygen"].galois_keys([2])  # step 2 only
            x = np.linspace(-1, 1, dim)
            ct = stack["encryptor"].encrypt(lin.encoder.encode(x))
            y = lin.matvec_diagonal(m, ct, gk)  # must not KeyError
            out = lin.encoder.decode(stack["decryptor"].decrypt(y))[:dim].real
        # dim < slot_count: rotations shift over the full slot vector, so
        # the d = 2 diagonal pulls x zero-padded, not wrapped
        expected = x + 0.5 * np.concatenate([x[2:], [0.0, 0.0]])
        np.testing.assert_allclose(out, expected, atol=2e-2)
