"""Tests for the wire format and its size accounting.

Beyond round-trip correctness, the corruption classes here pin down the
*rejection* behavior: every way a payload can be malformed -- truncated
at any header or payload boundary, padded with trailing bytes, wrong
magic, wrong kind, wrong ring -- must raise ``ValueError``.  Before
these checks existed a truncated ciphertext deserialized silently into
zeros (``int.from_bytes(b"", "little") == 0``)."""

import numpy as np
import pytest

from repro.ckks.serialization import (
    HEADER_BYTES,
    WORD_BYTES,
    ciphertext_wire_bytes,
    deserialize_ciphertext,
    deserialize_kswitch_key,
    deserialize_plaintext,
    kswitch_key_wire_bytes,
    polynomial_wire_bytes,
    serialize_ciphertext,
    serialize_kswitch_key,
    serialize_plaintext,
)


class TestCiphertextRoundTrip:
    def test_roundtrip_preserves_decryption(
        self, toy_context, encoder, encryptor, decryptor
    ):
        vals = np.array([1.25, -3.0, 0.5])
        ct = encryptor.encrypt(encoder.encode(vals))
        blob = serialize_ciphertext(ct)
        back = deserialize_ciphertext(blob, toy_context)
        out = encoder.decode(decryptor.decrypt(back)).real[:3]
        assert np.allclose(out, vals, atol=1e-3)

    def test_roundtrip_exact_polynomials(self, toy_context, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([2.0]))
        back = deserialize_ciphertext(serialize_ciphertext(ct), toy_context)
        assert back.size == ct.size
        assert back.scale == ct.scale
        for p, q in zip(ct.polys, back.polys):
            assert p == q

    def test_size3_ciphertext(self, toy_context, encoder, encryptor, evaluator):
        a = encryptor.encrypt(encoder.encode([1.0]))
        prod = evaluator.multiply(a, a)
        back = deserialize_ciphertext(serialize_ciphertext(prod), toy_context)
        assert back.size == 3

    def test_wrong_context_rejected(self, toy_context, encoder, encryptor):
        from repro.ckks.context import CkksContext, toy_parameters

        other = CkksContext(toy_parameters(n=32, k=2, prime_bits=28))
        ct = encryptor.encrypt(encoder.encode([1.0]))
        with pytest.raises(ValueError):
            deserialize_ciphertext(serialize_ciphertext(ct), other)

    def test_bad_magic_rejected(self, toy_context, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        blob = bytearray(serialize_ciphertext(ct))
        blob[0] = 0
        with pytest.raises(ValueError):
            deserialize_ciphertext(bytes(blob), toy_context)

    def test_kind_mismatch_rejected(self, toy_context, encoder):
        pt = encoder.encode([1.0])
        with pytest.raises(ValueError):
            deserialize_ciphertext(serialize_plaintext(pt), toy_context)


class TestPlaintextRoundTrip:
    def test_roundtrip(self, toy_context, encoder):
        pt = encoder.encode([0.75, -0.125])
        back = deserialize_plaintext(serialize_plaintext(pt), toy_context)
        assert back.poly == pt.poly
        assert back.scale == pt.scale

    def test_coefficient_form_flag(self, toy_context, encoder):
        pt = encoder.encode([1.0], to_ntt=False)
        back = deserialize_plaintext(serialize_plaintext(pt), toy_context)
        assert not back.poly.is_ntt


class TestKswitchKeyRoundTrip:
    def test_roundtrip(self, toy_context, relin_key):
        blob = serialize_kswitch_key(relin_key)
        back = deserialize_kswitch_key(blob, toy_context)
        assert back.digit_count == relin_key.digit_count
        for i in range(back.digit_count):
            b0, a0 = relin_key.digit(i)
            b1, a1 = back.digit(i)
            assert b0 == b1 and a0 == a1

    def test_roundtripped_key_still_works(
        self, toy_context, encoder, encryptor, decryptor, evaluator, relin_key
    ):
        back = deserialize_kswitch_key(
            serialize_kswitch_key(relin_key), toy_context
        )
        vals = np.array([0.5, 2.0])
        a = encryptor.encrypt(encoder.encode(vals))
        prod = evaluator.relinearize(evaluator.multiply(a, a), back)
        out = encoder.decode(decryptor.decrypt(prod)).real[:2]
        assert np.allclose(out, vals**2, atol=1e-2)


class TestSizeAccounting:
    def test_polynomial_wire_bytes_matches_paper_range(self):
        """2^15 to 2^17 bytes per polynomial across Set-A..C (Section 5.2)."""
        assert polynomial_wire_bytes(4096) == 1 << 15
        assert polynomial_wire_bytes(8192) == 1 << 16
        assert polynomial_wire_bytes(16384) == 1 << 17

    def test_ciphertext_payload_formula(self, toy_context, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        blob = serialize_ciphertext(ct)
        expected = ciphertext_wire_bytes(ct.n, ct.size, ct.level_count)
        assert len(blob) - HEADER_BYTES == expected

    def test_ksk_wire_bytes_section51(self):
        """Set-C ksk = 151 Mb on the wire (the DRAM streaming volume)."""
        bits = kswitch_key_wire_bytes(16384, 8) * 8
        assert bits / 1e6 == pytest.approx(151, rel=0.01)

    def test_serialized_ksk_matches_formula(self, toy_context, relin_key):
        blob = serialize_kswitch_key(relin_key)
        k = toy_context.k
        expected = kswitch_key_wire_bytes(toy_context.n, k)
        assert len(blob) - HEADER_BYTES == expected


def _all_objects(toy_context, encoder, encryptor, evaluator, relin_key):
    """(blob, deserializer) pairs covering every kind and several shapes."""
    ct2 = encryptor.encrypt(encoder.encode([1.5, -0.25]))
    ct3 = evaluator.multiply(ct2, ct2)
    dropped = evaluator.rescale(ct3)
    pt_ntt = encoder.encode([0.5, 2.0])
    pt_coeff = encoder.encode([1.0], to_ntt=False)
    pt_low = encoder.encode(0.25, level_count=2)
    return [
        (serialize_ciphertext(ct2), deserialize_ciphertext),
        (serialize_ciphertext(ct3), deserialize_ciphertext),
        (serialize_ciphertext(dropped), deserialize_ciphertext),
        (serialize_plaintext(pt_ntt), deserialize_plaintext),
        (serialize_plaintext(pt_coeff), deserialize_plaintext),
        (serialize_plaintext(pt_low), deserialize_plaintext),
        (serialize_kswitch_key(relin_key), deserialize_kswitch_key),
    ]


class TestRoundTripProperty:
    """Serialize -> deserialize -> serialize is the identity on bytes."""

    def test_reserialization_is_bit_exact(
        self, toy_context, encoder, encryptor, evaluator, relin_key
    ):
        serializers = {
            deserialize_ciphertext: serialize_ciphertext,
            deserialize_plaintext: serialize_plaintext,
            deserialize_kswitch_key: serialize_kswitch_key,
        }
        for blob, deserialize in _all_objects(
            toy_context, encoder, encryptor, evaluator, relin_key
        ):
            back = deserialize(blob, toy_context)
            assert serializers[deserialize](back) == blob

    @pytest.mark.parametrize("n,k", [(32, 2), (64, 1), (128, 4)])
    def test_roundtrip_across_shapes(self, n, k):
        from repro.ckks.context import CkksContext, toy_parameters
        from repro.ckks.encoder import CkksEncoder
        from repro.ckks.encryptor import Encryptor
        from repro.ckks.keys import KeyGenerator

        ctx = CkksContext(toy_parameters(n=n, k=k, prime_bits=30))
        keygen = KeyGenerator(ctx, seed=n + k)
        ct = Encryptor(ctx, keygen.public_key(), seed=1).encrypt(
            CkksEncoder(ctx).encode([1.0, -2.0])
        )
        blob = serialize_ciphertext(ct)
        assert serialize_ciphertext(deserialize_ciphertext(blob, ctx)) == blob


class TestCorruptionRejected:
    """Every malformed payload raises; nothing deserializes silently."""

    def test_truncation_at_every_header_boundary(
        self, toy_context, encoder, encryptor, evaluator, relin_key
    ):
        for blob, deserialize in _all_objects(
            toy_context, encoder, encryptor, evaluator, relin_key
        ):
            for cut in range(HEADER_BYTES):
                with pytest.raises(ValueError):
                    deserialize(blob[:cut], toy_context)

    def test_truncation_at_every_payload_word_boundary(
        self, toy_context, encoder, encryptor
    ):
        blob = serialize_ciphertext(encryptor.encrypt(encoder.encode([2.0])))
        for cut in range(HEADER_BYTES, len(blob), WORD_BYTES):
            with pytest.raises(ValueError, match="truncated"):
                deserialize_ciphertext(blob[:cut], toy_context)

    def test_truncation_mid_word(
        self, toy_context, encoder, encryptor, evaluator, relin_key
    ):
        for blob, deserialize in _all_objects(
            toy_context, encoder, encryptor, evaluator, relin_key
        ):
            with pytest.raises(ValueError, match="truncated"):
                deserialize(blob[:-3], toy_context)
            with pytest.raises(ValueError, match="truncated"):
                deserialize(blob[: HEADER_BYTES + 1], toy_context)

    def test_trailing_garbage_rejected(
        self, toy_context, encoder, encryptor, evaluator, relin_key
    ):
        for blob, deserialize in _all_objects(
            toy_context, encoder, encryptor, evaluator, relin_key
        ):
            for junk in (b"\x00", b"garbage"):
                with pytest.raises(ValueError, match="trailing"):
                    deserialize(blob + junk, toy_context)

    def test_truncated_payload_no_longer_decodes_as_zeros(
        self, toy_context, encoder, encryptor
    ):
        """The original bug: a cut blob yielded an all-zeros ciphertext."""
        ct = encryptor.encrypt(encoder.encode([3.0]))
        blob = serialize_ciphertext(ct)
        cut = blob[: HEADER_BYTES + ct.n * WORD_BYTES]  # one row of 2k+... gone
        with pytest.raises(ValueError, match="truncated"):
            deserialize_ciphertext(cut, toy_context)

    def test_bad_kind_byte_rejected(
        self, toy_context, encoder, encryptor, evaluator, relin_key
    ):
        for blob, deserialize in _all_objects(
            toy_context, encoder, encryptor, evaluator, relin_key
        ):
            mangled = bytearray(blob)
            mangled[5] = 99  # kind byte: magic(4) + version(1)
            with pytest.raises(ValueError):
                deserialize(bytes(mangled), toy_context)

    def test_kind_cross_rejected(self, toy_context, encoder, relin_key):
        pt_blob = serialize_plaintext(encoder.encode([1.0]))
        ksk_blob = serialize_kswitch_key(relin_key)
        with pytest.raises(ValueError, match="not a ciphertext"):
            deserialize_ciphertext(ksk_blob, toy_context)
        with pytest.raises(ValueError, match="not a plaintext"):
            deserialize_plaintext(ksk_blob, toy_context)
        with pytest.raises(ValueError, match="not a key-switching key"):
            deserialize_kswitch_key(pt_blob, toy_context)

    def test_zero_count_header_rejected(self, toy_context, encoder, encryptor):
        import struct

        blob = bytearray(serialize_ciphertext(encryptor.encrypt(encoder.encode([1.0]))))
        struct.pack_into("<H", blob, 10, 0)  # comps := 0
        with pytest.raises(ValueError, match="malformed header"):
            deserialize_ciphertext(bytes(blob[:HEADER_BYTES]), toy_context)

    def test_kswitch_key_from_wrong_ring_rejected(self, toy_context):
        """The key path must enforce the same ring check as ciphertexts."""
        from repro.ckks.context import CkksContext, toy_parameters
        from repro.ckks.keys import KeyGenerator

        other = CkksContext(toy_parameters(n=32, k=3, prime_bits=30))
        foreign = KeyGenerator(other, seed=9).relin_key()
        with pytest.raises(ValueError, match="ring mismatch"):
            deserialize_kswitch_key(serialize_kswitch_key(foreign), toy_context)

    def test_plaintext_from_wrong_ring_rejected(self, toy_context):
        from repro.ckks.context import CkksContext, toy_parameters
        from repro.ckks.encoder import CkksEncoder

        other = CkksContext(toy_parameters(n=32, k=3, prime_bits=30))
        blob = serialize_plaintext(CkksEncoder(other).encode([1.0]))
        with pytest.raises(ValueError, match="ring mismatch"):
            deserialize_plaintext(blob, toy_context)


class TestScaleMetadataRejected:
    """Degenerate scale in the wire header is corrupt metadata."""

    @pytest.mark.parametrize("bad", [0.0, -2.0**28, float("nan"), float("inf")])
    def test_ciphertext_bad_scale_rejected(
        self, toy_context, encoder, encryptor, bad
    ):
        import struct

        blob = bytearray(serialize_ciphertext(encryptor.encrypt(encoder.encode([1.0]))))
        struct.pack_into("<d", blob, 14, bad)  # scale field of the header
        with pytest.raises(ValueError, match="scale"):
            deserialize_ciphertext(bytes(blob), toy_context)

    def test_plaintext_bad_scale_rejected(self, toy_context, encoder):
        import struct

        blob = bytearray(serialize_plaintext(encoder.encode([1.0])))
        struct.pack_into("<d", blob, 14, 0.0)
        with pytest.raises(ValueError, match="scale"):
            deserialize_plaintext(bytes(blob), toy_context)

    def test_kswitch_key_zero_scale_still_accepted(self, toy_context, relin_key):
        # keys carry no scale; their header legitimately writes 0.0
        blob = serialize_kswitch_key(relin_key)
        assert deserialize_kswitch_key(blob, toy_context).digit_count == relin_key.digit_count
