"""Tests for the wire format and its size accounting.

Beyond round-trip correctness, the corruption classes here pin down the
*rejection* behavior: every way a payload can be malformed -- truncated
at any header or payload boundary, padded with trailing bytes, wrong
magic, wrong kind, wrong ring -- must raise ``ValueError``.  Before
these checks existed a truncated ciphertext deserialized silently into
zeros (``int.from_bytes(b"", "little") == 0``)."""

import numpy as np
import pytest

from repro.ckks.serialization import (
    HEADER_BYTES,
    WORD_BYTES,
    ciphertext_wire_bytes,
    deserialize_ciphertext,
    deserialize_kswitch_key,
    deserialize_plaintext,
    kswitch_key_wire_bytes,
    polynomial_wire_bytes,
    serialize_ciphertext,
    serialize_kswitch_key,
    serialize_plaintext,
)


class TestCiphertextRoundTrip:
    def test_roundtrip_preserves_decryption(
        self, toy_context, encoder, encryptor, decryptor
    ):
        vals = np.array([1.25, -3.0, 0.5])
        ct = encryptor.encrypt(encoder.encode(vals))
        blob = serialize_ciphertext(ct)
        back = deserialize_ciphertext(blob, toy_context)
        out = encoder.decode(decryptor.decrypt(back)).real[:3]
        assert np.allclose(out, vals, atol=1e-3)

    def test_roundtrip_exact_polynomials(self, toy_context, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([2.0]))
        back = deserialize_ciphertext(serialize_ciphertext(ct), toy_context)
        assert back.size == ct.size
        assert back.scale == ct.scale
        for p, q in zip(ct.polys, back.polys):
            assert p == q

    def test_size3_ciphertext(self, toy_context, encoder, encryptor, evaluator):
        a = encryptor.encrypt(encoder.encode([1.0]))
        prod = evaluator.multiply(a, a)
        back = deserialize_ciphertext(serialize_ciphertext(prod), toy_context)
        assert back.size == 3

    def test_wrong_context_rejected(self, toy_context, encoder, encryptor):
        from repro.ckks.context import CkksContext, toy_parameters

        other = CkksContext(toy_parameters(n=32, k=2, prime_bits=28))
        ct = encryptor.encrypt(encoder.encode([1.0]))
        with pytest.raises(ValueError):
            deserialize_ciphertext(serialize_ciphertext(ct), other)

    def test_bad_magic_rejected(self, toy_context, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        blob = bytearray(serialize_ciphertext(ct))
        blob[0] = 0
        with pytest.raises(ValueError):
            deserialize_ciphertext(bytes(blob), toy_context)

    def test_kind_mismatch_rejected(self, toy_context, encoder):
        pt = encoder.encode([1.0])
        with pytest.raises(ValueError):
            deserialize_ciphertext(serialize_plaintext(pt), toy_context)


class TestPlaintextRoundTrip:
    def test_roundtrip(self, toy_context, encoder):
        pt = encoder.encode([0.75, -0.125])
        back = deserialize_plaintext(serialize_plaintext(pt), toy_context)
        assert back.poly == pt.poly
        assert back.scale == pt.scale

    def test_coefficient_form_flag(self, toy_context, encoder):
        pt = encoder.encode([1.0], to_ntt=False)
        back = deserialize_plaintext(serialize_plaintext(pt), toy_context)
        assert not back.poly.is_ntt


class TestKswitchKeyRoundTrip:
    def test_roundtrip(self, toy_context, relin_key):
        blob = serialize_kswitch_key(relin_key)
        back = deserialize_kswitch_key(blob, toy_context)
        assert back.digit_count == relin_key.digit_count
        for i in range(back.digit_count):
            b0, a0 = relin_key.digit(i)
            b1, a1 = back.digit(i)
            assert b0 == b1 and a0 == a1

    def test_roundtripped_key_still_works(
        self, toy_context, encoder, encryptor, decryptor, evaluator, relin_key
    ):
        back = deserialize_kswitch_key(
            serialize_kswitch_key(relin_key), toy_context
        )
        vals = np.array([0.5, 2.0])
        a = encryptor.encrypt(encoder.encode(vals))
        prod = evaluator.relinearize(evaluator.multiply(a, a), back)
        out = encoder.decode(decryptor.decrypt(prod)).real[:2]
        assert np.allclose(out, vals**2, atol=1e-2)


class TestSizeAccounting:
    def test_polynomial_wire_bytes_matches_paper_range(self):
        """2^15 to 2^17 bytes per polynomial across Set-A..C (Section 5.2)."""
        assert polynomial_wire_bytes(4096) == 1 << 15
        assert polynomial_wire_bytes(8192) == 1 << 16
        assert polynomial_wire_bytes(16384) == 1 << 17

    def test_ciphertext_payload_formula(self, toy_context, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        blob = serialize_ciphertext(ct)
        expected = ciphertext_wire_bytes(ct.n, ct.size, ct.level_count)
        assert len(blob) - HEADER_BYTES == expected

    def test_ksk_wire_bytes_section51(self):
        """Set-C ksk = 151 Mb on the wire (the DRAM streaming volume)."""
        bits = kswitch_key_wire_bytes(16384, 8) * 8
        assert bits / 1e6 == pytest.approx(151, rel=0.01)

    def test_serialized_ksk_matches_formula(self, toy_context, relin_key):
        blob = serialize_kswitch_key(relin_key)
        k = toy_context.k
        expected = kswitch_key_wire_bytes(toy_context.n, k)
        assert len(blob) - HEADER_BYTES == expected


def _all_objects(toy_context, encoder, encryptor, evaluator, relin_key):
    """(blob, deserializer) pairs covering every kind and several shapes."""
    ct2 = encryptor.encrypt(encoder.encode([1.5, -0.25]))
    ct3 = evaluator.multiply(ct2, ct2)
    dropped = evaluator.rescale(ct3)
    pt_ntt = encoder.encode([0.5, 2.0])
    pt_coeff = encoder.encode([1.0], to_ntt=False)
    pt_low = encoder.encode(0.25, level_count=2)
    return [
        (serialize_ciphertext(ct2), deserialize_ciphertext),
        (serialize_ciphertext(ct3), deserialize_ciphertext),
        (serialize_ciphertext(dropped), deserialize_ciphertext),
        (serialize_plaintext(pt_ntt), deserialize_plaintext),
        (serialize_plaintext(pt_coeff), deserialize_plaintext),
        (serialize_plaintext(pt_low), deserialize_plaintext),
        (serialize_kswitch_key(relin_key), deserialize_kswitch_key),
    ]


class TestRoundTripProperty:
    """Serialize -> deserialize -> serialize is the identity on bytes."""

    def test_reserialization_is_bit_exact(
        self, toy_context, encoder, encryptor, evaluator, relin_key
    ):
        serializers = {
            deserialize_ciphertext: serialize_ciphertext,
            deserialize_plaintext: serialize_plaintext,
            deserialize_kswitch_key: serialize_kswitch_key,
        }
        for blob, deserialize in _all_objects(
            toy_context, encoder, encryptor, evaluator, relin_key
        ):
            back = deserialize(blob, toy_context)
            assert serializers[deserialize](back) == blob

    @pytest.mark.parametrize("n,k", [(32, 2), (64, 1), (128, 4)])
    def test_roundtrip_across_shapes(self, n, k):
        from repro.ckks.context import CkksContext, toy_parameters
        from repro.ckks.encoder import CkksEncoder
        from repro.ckks.encryptor import Encryptor
        from repro.ckks.keys import KeyGenerator

        ctx = CkksContext(toy_parameters(n=n, k=k, prime_bits=30))
        keygen = KeyGenerator(ctx, seed=n + k)
        ct = Encryptor(ctx, keygen.public_key(), seed=1).encrypt(
            CkksEncoder(ctx).encode([1.0, -2.0])
        )
        blob = serialize_ciphertext(ct)
        assert serialize_ciphertext(deserialize_ciphertext(blob, ctx)) == blob


class TestCorruptionRejected:
    """Every malformed payload raises; nothing deserializes silently."""

    def test_truncation_at_every_header_boundary(
        self, toy_context, encoder, encryptor, evaluator, relin_key
    ):
        for blob, deserialize in _all_objects(
            toy_context, encoder, encryptor, evaluator, relin_key
        ):
            for cut in range(HEADER_BYTES):
                with pytest.raises(ValueError):
                    deserialize(blob[:cut], toy_context)

    def test_truncation_at_every_payload_word_boundary(
        self, toy_context, encoder, encryptor
    ):
        blob = serialize_ciphertext(encryptor.encrypt(encoder.encode([2.0])))
        for cut in range(HEADER_BYTES, len(blob), WORD_BYTES):
            with pytest.raises(ValueError, match="truncated"):
                deserialize_ciphertext(blob[:cut], toy_context)

    def test_truncation_mid_word(
        self, toy_context, encoder, encryptor, evaluator, relin_key
    ):
        for blob, deserialize in _all_objects(
            toy_context, encoder, encryptor, evaluator, relin_key
        ):
            with pytest.raises(ValueError, match="truncated"):
                deserialize(blob[:-3], toy_context)
            with pytest.raises(ValueError, match="truncated"):
                deserialize(blob[: HEADER_BYTES + 1], toy_context)

    def test_trailing_garbage_rejected(
        self, toy_context, encoder, encryptor, evaluator, relin_key
    ):
        for blob, deserialize in _all_objects(
            toy_context, encoder, encryptor, evaluator, relin_key
        ):
            for junk in (b"\x00", b"garbage"):
                with pytest.raises(ValueError, match="trailing"):
                    deserialize(blob + junk, toy_context)

    def test_truncated_payload_no_longer_decodes_as_zeros(
        self, toy_context, encoder, encryptor
    ):
        """The original bug: a cut blob yielded an all-zeros ciphertext."""
        ct = encryptor.encrypt(encoder.encode([3.0]))
        blob = serialize_ciphertext(ct)
        cut = blob[: HEADER_BYTES + ct.n * WORD_BYTES]  # one row of 2k+... gone
        with pytest.raises(ValueError, match="truncated"):
            deserialize_ciphertext(cut, toy_context)

    def test_bad_kind_byte_rejected(
        self, toy_context, encoder, encryptor, evaluator, relin_key
    ):
        for blob, deserialize in _all_objects(
            toy_context, encoder, encryptor, evaluator, relin_key
        ):
            mangled = bytearray(blob)
            mangled[5] = 99  # kind byte: magic(4) + version(1)
            with pytest.raises(ValueError):
                deserialize(bytes(mangled), toy_context)

    def test_kind_cross_rejected(self, toy_context, encoder, relin_key):
        pt_blob = serialize_plaintext(encoder.encode([1.0]))
        ksk_blob = serialize_kswitch_key(relin_key)
        with pytest.raises(ValueError, match="not a ciphertext"):
            deserialize_ciphertext(ksk_blob, toy_context)
        with pytest.raises(ValueError, match="not a plaintext"):
            deserialize_plaintext(ksk_blob, toy_context)
        with pytest.raises(ValueError, match="not a key-switching key"):
            deserialize_kswitch_key(pt_blob, toy_context)

    def test_zero_count_header_rejected(self, toy_context, encoder, encryptor):
        import struct

        blob = bytearray(serialize_ciphertext(encryptor.encrypt(encoder.encode([1.0]))))
        struct.pack_into("<H", blob, 10, 0)  # comps := 0
        with pytest.raises(ValueError, match="malformed header"):
            deserialize_ciphertext(bytes(blob[:HEADER_BYTES]), toy_context)

    def test_kswitch_key_from_wrong_ring_rejected(self, toy_context):
        """The key path must enforce the same ring check as ciphertexts."""
        from repro.ckks.context import CkksContext, toy_parameters
        from repro.ckks.keys import KeyGenerator

        other = CkksContext(toy_parameters(n=32, k=3, prime_bits=30))
        foreign = KeyGenerator(other, seed=9).relin_key()
        with pytest.raises(ValueError, match="ring mismatch"):
            deserialize_kswitch_key(serialize_kswitch_key(foreign), toy_context)

    def test_plaintext_from_wrong_ring_rejected(self, toy_context):
        from repro.ckks.context import CkksContext, toy_parameters
        from repro.ckks.encoder import CkksEncoder

        other = CkksContext(toy_parameters(n=32, k=3, prime_bits=30))
        blob = serialize_plaintext(CkksEncoder(other).encode([1.0]))
        with pytest.raises(ValueError, match="ring mismatch"):
            deserialize_plaintext(blob, toy_context)


class TestScaleMetadataRejected:
    """Degenerate scale in the wire header is corrupt metadata."""

    @pytest.mark.parametrize("bad", [0.0, -2.0**28, float("nan"), float("inf")])
    def test_ciphertext_bad_scale_rejected(
        self, toy_context, encoder, encryptor, bad
    ):
        import struct

        blob = bytearray(serialize_ciphertext(encryptor.encrypt(encoder.encode([1.0]))))
        struct.pack_into("<d", blob, 14, bad)  # scale field of the header
        with pytest.raises(ValueError, match="scale"):
            deserialize_ciphertext(bytes(blob), toy_context)

    def test_plaintext_bad_scale_rejected(self, toy_context, encoder):
        import struct

        blob = bytearray(serialize_plaintext(encoder.encode([1.0])))
        struct.pack_into("<d", blob, 14, 0.0)
        with pytest.raises(ValueError, match="scale"):
            deserialize_plaintext(bytes(blob), toy_context)

    def test_kswitch_key_zero_scale_still_accepted(self, toy_context, relin_key):
        # keys carry no scale; their header legitimately writes 0.0
        blob = serialize_kswitch_key(relin_key)
        assert deserialize_kswitch_key(blob, toy_context).digit_count == relin_key.digit_count


# ----------------------------------------------------------------------
# wire format v2 and header-field hardening
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def seeded_keygen(toy_context):
    from repro.ckks.keys import KeyGenerator

    return KeyGenerator(toy_context, seed=424242, expansion_seed=b"\x11" * 32)


@pytest.fixture(scope="module")
def seeded_relin_key(seeded_keygen):
    return seeded_keygen.relin_key()


class TestHeaderFieldBounds:
    """The serializers must reject shapes the fixed header cannot hold.

    Regression for the ``level_count | 0x8000`` hazard: ``level_count``
    shares its u16 with the NTT flag, so 0x8000 levels would silently
    set (or a packed flag would corrupt) the flag bit; ``comps`` and
    ``n`` would wrap through struct packing.
    """

    @staticmethod
    def _fake_ct(n=64, size=2, level_count=3):
        from types import SimpleNamespace

        return SimpleNamespace(n=n, size=size, level_count=level_count)

    def test_level_count_colliding_with_ntt_flag_rejected(self):
        with pytest.raises(ValueError, match="NTT"):
            serialize_ciphertext(self._fake_ct(level_count=0x8000))

    def test_component_count_overflow_rejected(self):
        with pytest.raises(ValueError, match="component count"):
            serialize_ciphertext(self._fake_ct(size=0x10000))

    def test_ring_degree_overflow_rejected(self):
        with pytest.raises(ValueError, match="ring degree"):
            serialize_ciphertext(self._fake_ct(n=0x100000000))

    def test_nonpositive_fields_rejected(self):
        with pytest.raises(ValueError):
            serialize_ciphertext(self._fake_ct(n=0))
        with pytest.raises(ValueError):
            serialize_ciphertext(self._fake_ct(size=0))
        with pytest.raises(ValueError):
            serialize_ciphertext(self._fake_ct(level_count=0))

    def test_plaintext_level_bound_enforced(self):
        from types import SimpleNamespace

        fake = SimpleNamespace(n=64, level_count=0x8000, scale=1.0)
        with pytest.raises(ValueError, match="NTT"):
            serialize_plaintext(fake)

    def test_kswitch_key_digit_bound_enforced(self):
        from types import SimpleNamespace

        d0 = SimpleNamespace(n=64, level_count=4)
        fake = SimpleNamespace(
            digit_count=0x10000, digit=lambda i: (d0, None)
        )
        with pytest.raises(ValueError, match="component count"):
            serialize_kswitch_key(fake)

    def test_kswitch_key_level_bound_enforced(self):
        from types import SimpleNamespace

        d0 = SimpleNamespace(n=64, level_count=0x8000)
        fake = SimpleNamespace(digit_count=3, digit=lambda i: (d0, None))
        with pytest.raises(ValueError, match="NTT"):
            serialize_kswitch_key(fake)


class TestKskNttFlagEnforced:
    """Regression: the deserializer used to discard the header's NTT
    flag and hardcode ``is_ntt=True``.  A blob whose flag contradicts
    the kswitch invariant (keys are NTT-form by construction) must be
    rejected, not silently reinterpreted."""

    @pytest.mark.parametrize("version", [1, 2])
    def test_cleared_ntt_flag_rejected(self, toy_context, relin_key, version):
        blob = bytearray(serialize_kswitch_key(relin_key, version=version))
        # rns_flags u16 lives at offset 12; bit 15 is the NTT flag
        blob[13] &= 0x7F
        with pytest.raises(ValueError, match="coefficient form"):
            deserialize_kswitch_key(bytes(blob), toy_context)

    def test_valid_flag_still_accepted(self, toy_context, relin_key):
        blob = serialize_kswitch_key(relin_key)
        assert (blob[13] & 0x80) != 0  # the flag is actually set on the wire
        back = deserialize_kswitch_key(blob, toy_context)
        b0, a0 = back.digit(0)
        assert b0.is_ntt and a0.is_ntt


class TestSizeAccountingBothVersions:
    """``len(serialize_*(obj, v)) == HEADER_BYTES + *_wire_bytes(...)``
    must hold for every kind in both versions -- the scheduler's PCIe
    model bills these formulas as actual bytes."""

    @pytest.mark.parametrize("version", [1, 2])
    def test_ciphertext(self, toy_context, encoder, encryptor, version):
        ct = encryptor.encrypt(encoder.encode([1.0, -2.5]))
        moduli = toy_context.basis_at_level(ct.level_count).moduli
        blob = serialize_ciphertext(ct, version=version)
        assert len(blob) == HEADER_BYTES + ciphertext_wire_bytes(
            ct.n, ct.size, ct.level_count, version=version, moduli=moduli
        )

    @pytest.mark.parametrize("version", [1, 2])
    def test_rescaled_ciphertext(
        self, toy_context, encoder, encryptor, evaluator, version
    ):
        ct = evaluator.rescale(
            evaluator.multiply(*[encryptor.encrypt(encoder.encode([1.5]))] * 2)
        )
        moduli = toy_context.basis_at_level(ct.level_count).moduli
        blob = serialize_ciphertext(ct, version=version)
        assert len(blob) == HEADER_BYTES + ciphertext_wire_bytes(
            ct.n, ct.size, ct.level_count, version=version, moduli=moduli
        )

    @pytest.mark.parametrize("version", [1, 2])
    def test_plaintext(self, toy_context, encoder, version):
        from repro.ckks.serialization import plaintext_wire_bytes

        pt = encoder.encode([0.5, 2.0])
        moduli = toy_context.basis_at_level(pt.level_count).moduli
        blob = serialize_plaintext(pt, version=version)
        assert len(blob) == HEADER_BYTES + plaintext_wire_bytes(
            pt.n, pt.level_count, version=version, moduli=moduli
        )

    @pytest.mark.parametrize("version", [1, 2])
    def test_kswitch_key_full(self, toy_context, relin_key, version):
        moduli = toy_context.key_basis.moduli
        blob = serialize_kswitch_key(relin_key, version=version)
        assert len(blob) == HEADER_BYTES + kswitch_key_wire_bytes(
            toy_context.n, toy_context.k, version=version, moduli=moduli
        )

    def test_kswitch_key_seeded(self, toy_context, seeded_relin_key):
        moduli = toy_context.key_basis.moduli
        blob = serialize_kswitch_key(seeded_relin_key, version=2)
        assert len(blob) == HEADER_BYTES + kswitch_key_wire_bytes(
            toy_context.n, toy_context.k, version=2, moduli=moduli,
            seeded=True,
        )

    def test_v1_cannot_claim_seeded(self, toy_context):
        with pytest.raises(ValueError, match="seed"):
            kswitch_key_wire_bytes(64, 3, version=1, seeded=True)

    def test_v2_requires_moduli(self):
        with pytest.raises(ValueError, match="moduli"):
            ciphertext_wire_bytes(64, 2, 3, version=2)


class TestV2RoundTrip:
    """v2 blobs round-trip bit-exactly, shrink the wire, and decode to
    the same polynomials v1 carries."""

    def test_ciphertext_v2_roundtrip_and_matches_v1(
        self, toy_context, encoder, encryptor
    ):
        ct = encryptor.encrypt(encoder.encode([1.25, -3.0]))
        v1 = serialize_ciphertext(ct, version=1)
        v2 = serialize_ciphertext(ct, version=2)
        assert len(v2) < len(v1)
        back = deserialize_ciphertext(v2, toy_context)
        assert serialize_ciphertext(back, version=2) == v2
        for p, q in zip(ct.polys, back.polys):
            assert p == q
        # and the v2 decode re-serializes to the identical v1 bytes
        assert serialize_ciphertext(back, version=1) == v1

    def test_plaintext_v2_roundtrip(self, toy_context, encoder):
        for pt in (encoder.encode([0.75]), encoder.encode([1.0], to_ntt=False)):
            v2 = serialize_plaintext(pt, version=2)
            back = deserialize_plaintext(v2, toy_context)
            assert serialize_plaintext(back, version=2) == v2
            assert back.poly == pt.poly

    def test_ksk_v2_full_roundtrip(self, toy_context, relin_key):
        v2 = serialize_kswitch_key(relin_key, version=2)
        back = deserialize_kswitch_key(v2, toy_context)
        assert serialize_kswitch_key(back, version=2) == v2
        for i in range(back.digit_count):
            assert back.digit(i) == relin_key.digit(i)

    def test_ksk_v2_seeded_roundtrip(self, toy_context, seeded_relin_key):
        v2 = serialize_kswitch_key(seeded_relin_key, version=2)
        back = deserialize_kswitch_key(v2, toy_context)
        # the decoded key keeps its seed, so re-serialization round-trips
        assert back.seed == seeded_relin_key.seed
        assert serialize_kswitch_key(back, version=2) == v2
        for i in range(back.digit_count):
            assert back.digit(i) == seeded_relin_key.digit(i)

    def test_seeded_key_halves_the_blob(self, toy_context, seeded_relin_key):
        full = serialize_kswitch_key(seeded_relin_key, version=1)
        seeded = serialize_kswitch_key(seeded_relin_key, version=2)
        assert len(seeded) < len(full) / 2

    def test_deserialized_seeded_key_still_relinearizes(
        self, toy_context, encoder, seeded_keygen, seeded_relin_key, evaluator
    ):
        from repro.ckks.decryptor import Decryptor
        from repro.ckks.encryptor import Encryptor

        back = deserialize_kswitch_key(
            serialize_kswitch_key(seeded_relin_key, version=2), toy_context
        )
        enc = Encryptor(toy_context, seeded_keygen.public_key(), seed=5)
        dec = Decryptor(toy_context, seeded_keygen.secret_key)
        vals = np.array([0.5, 2.0])
        a = enc.encrypt(encoder.encode(vals))
        prod = evaluator.relinearize(evaluator.multiply(a, a), back)
        out = encoder.decode(dec.decrypt(prod)).real[:2]
        assert np.allclose(out, vals**2, atol=1e-2)

    def test_v2_truncation_at_bit_row_boundaries_raises(
        self, toy_context, encoder, encryptor
    ):
        blob = serialize_ciphertext(
            encryptor.encrypt(encoder.encode([2.0])), version=2
        )
        for cut in range(HEADER_BYTES, len(blob), 7):
            with pytest.raises(ValueError, match="truncated"):
                deserialize_ciphertext(blob[:cut], toy_context)

    def test_v2_trailing_bytes_raise(self, toy_context, encoder, encryptor):
        blob = serialize_ciphertext(
            encryptor.encrypt(encoder.encode([2.0])), version=2
        )
        with pytest.raises(ValueError, match="trailing"):
            deserialize_ciphertext(blob + b"\x00", toy_context)

    def test_unknown_ksk_layout_byte_rejected(self, toy_context, relin_key):
        blob = bytearray(serialize_kswitch_key(relin_key, version=2))
        blob[HEADER_BYTES] = 7
        with pytest.raises(ValueError, match="layout"):
            deserialize_kswitch_key(bytes(blob), toy_context)

    def test_unsupported_version_rejected(self, toy_context, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        with pytest.raises(ValueError, match="version"):
            serialize_ciphertext(ct, version=3)
        blob = bytearray(serialize_ciphertext(ct))
        blob[4] = 9  # header version byte
        with pytest.raises(ValueError, match="version"):
            deserialize_ciphertext(bytes(blob), toy_context)
