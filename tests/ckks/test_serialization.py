"""Tests for the wire format and its size accounting."""

import numpy as np
import pytest

from repro.ckks.serialization import (
    HEADER_BYTES,
    WORD_BYTES,
    ciphertext_wire_bytes,
    deserialize_ciphertext,
    deserialize_kswitch_key,
    deserialize_plaintext,
    kswitch_key_wire_bytes,
    polynomial_wire_bytes,
    serialize_ciphertext,
    serialize_kswitch_key,
    serialize_plaintext,
)


class TestCiphertextRoundTrip:
    def test_roundtrip_preserves_decryption(
        self, toy_context, encoder, encryptor, decryptor
    ):
        vals = np.array([1.25, -3.0, 0.5])
        ct = encryptor.encrypt(encoder.encode(vals))
        blob = serialize_ciphertext(ct)
        back = deserialize_ciphertext(blob, toy_context)
        out = encoder.decode(decryptor.decrypt(back)).real[:3]
        assert np.allclose(out, vals, atol=1e-3)

    def test_roundtrip_exact_polynomials(self, toy_context, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([2.0]))
        back = deserialize_ciphertext(serialize_ciphertext(ct), toy_context)
        assert back.size == ct.size
        assert back.scale == ct.scale
        for p, q in zip(ct.polys, back.polys):
            assert p == q

    def test_size3_ciphertext(self, toy_context, encoder, encryptor, evaluator):
        a = encryptor.encrypt(encoder.encode([1.0]))
        prod = evaluator.multiply(a, a)
        back = deserialize_ciphertext(serialize_ciphertext(prod), toy_context)
        assert back.size == 3

    def test_wrong_context_rejected(self, toy_context, encoder, encryptor):
        from repro.ckks.context import CkksContext, toy_parameters

        other = CkksContext(toy_parameters(n=32, k=2, prime_bits=28))
        ct = encryptor.encrypt(encoder.encode([1.0]))
        with pytest.raises(ValueError):
            deserialize_ciphertext(serialize_ciphertext(ct), other)

    def test_bad_magic_rejected(self, toy_context, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        blob = bytearray(serialize_ciphertext(ct))
        blob[0] = 0
        with pytest.raises(ValueError):
            deserialize_ciphertext(bytes(blob), toy_context)

    def test_kind_mismatch_rejected(self, toy_context, encoder):
        pt = encoder.encode([1.0])
        with pytest.raises(ValueError):
            deserialize_ciphertext(serialize_plaintext(pt), toy_context)


class TestPlaintextRoundTrip:
    def test_roundtrip(self, toy_context, encoder):
        pt = encoder.encode([0.75, -0.125])
        back = deserialize_plaintext(serialize_plaintext(pt), toy_context)
        assert back.poly == pt.poly
        assert back.scale == pt.scale

    def test_coefficient_form_flag(self, toy_context, encoder):
        pt = encoder.encode([1.0], to_ntt=False)
        back = deserialize_plaintext(serialize_plaintext(pt), toy_context)
        assert not back.poly.is_ntt


class TestKswitchKeyRoundTrip:
    def test_roundtrip(self, toy_context, relin_key):
        blob = serialize_kswitch_key(relin_key)
        back = deserialize_kswitch_key(blob, toy_context)
        assert back.digit_count == relin_key.digit_count
        for i in range(back.digit_count):
            b0, a0 = relin_key.digit(i)
            b1, a1 = back.digit(i)
            assert b0 == b1 and a0 == a1

    def test_roundtripped_key_still_works(
        self, toy_context, encoder, encryptor, decryptor, evaluator, relin_key
    ):
        back = deserialize_kswitch_key(
            serialize_kswitch_key(relin_key), toy_context
        )
        vals = np.array([0.5, 2.0])
        a = encryptor.encrypt(encoder.encode(vals))
        prod = evaluator.relinearize(evaluator.multiply(a, a), back)
        out = encoder.decode(decryptor.decrypt(prod)).real[:2]
        assert np.allclose(out, vals**2, atol=1e-2)


class TestSizeAccounting:
    def test_polynomial_wire_bytes_matches_paper_range(self):
        """2^15 to 2^17 bytes per polynomial across Set-A..C (Section 5.2)."""
        assert polynomial_wire_bytes(4096) == 1 << 15
        assert polynomial_wire_bytes(8192) == 1 << 16
        assert polynomial_wire_bytes(16384) == 1 << 17

    def test_ciphertext_payload_formula(self, toy_context, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        blob = serialize_ciphertext(ct)
        expected = ciphertext_wire_bytes(ct.n, ct.size, ct.level_count)
        assert len(blob) - HEADER_BYTES == expected

    def test_ksk_wire_bytes_section51(self):
        """Set-C ksk = 151 Mb on the wire (the DRAM streaming volume)."""
        bits = kswitch_key_wire_bytes(16384, 8) * 8
        assert bits / 1e6 == pytest.approx(151, rel=0.01)

    def test_serialized_ksk_matches_formula(self, toy_context, relin_key):
        blob = serialize_kswitch_key(relin_key)
        k = toy_context.k
        expected = kswitch_key_wire_bytes(toy_context.n, k)
        assert len(blob) - HEADER_BYTES == expected
