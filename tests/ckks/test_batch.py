"""CiphertextBatch / BatchEvaluator: container semantics and edge cases.

The numeric batched-vs-scalar equivalence lives in the differential
harness (``test_differential.py``); this module pins down the batch
*container* contract: homogeneity validation (ragged / mixed-level /
empty inputs raise cleanly), split/join round-trips, the degenerate
batch of one, and the evaluator's shape discipline.
"""

from __future__ import annotations

import pytest

from repro.ckks.batch import BatchEvaluator, CiphertextBatch
from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.decryptor import Decryptor
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.poly import Ciphertext


@pytest.fixture(scope="module")
def env():
    ctx = CkksContext(toy_parameters(n=64, k=3, prime_bits=30))
    keygen = KeyGenerator(ctx, seed=31)
    return {
        "ctx": ctx,
        "keygen": keygen,
        "encryptor": Encryptor(ctx, keygen.public_key(), seed=32),
        "encoder": CkksEncoder(ctx),
        "evaluator": Evaluator(ctx),
        "batch_evaluator": BatchEvaluator(ctx),
        "decryptor": Decryptor(ctx, keygen.secret_key),
    }


def fresh_cts(env, count, value=1.5):
    enc = env["encoder"]
    return [
        env["encryptor"].encrypt(enc.encode(value + b)) for b in range(count)
    ]


# ---------------------------------------------------------------------------
# join/split and homogeneity validation
# ---------------------------------------------------------------------------
class TestContainer:
    def test_empty_batch_raises(self):
        with pytest.raises(ValueError, match="zero ciphertexts"):
            CiphertextBatch.from_ciphertexts([])

    def test_join_split_round_trip(self, env):
        cts = fresh_cts(env, 4)
        batch = CiphertextBatch.join(cts)
        assert len(batch) == 4
        assert batch.size == 2
        assert batch.level_count == 3
        out = batch.split()
        for a, b in zip(cts, out):
            assert [p.residues for p in a.polys] == [p.residues for p in b.polys]
            assert a.scale == b.scale
            assert b.is_ntt

    def test_split_join_round_trip_after_ops(self, env):
        """join(split(batch)) preserves rows even when stacks are
        backend-native arrays (post-operation state)."""
        bev = env["batch_evaluator"]
        batch = bev.add(
            CiphertextBatch.join(fresh_cts(env, 3)),
            CiphertextBatch.join(fresh_cts(env, 3)),
        )
        rejoined = CiphertextBatch.join(batch.split())
        assert [
            [p.residues for p in ct.polys] for ct in rejoined.split()
        ] == [[p.residues for p in ct.polys] for ct in batch.split()]

    def test_batch_of_one(self, env):
        cts = fresh_cts(env, 1)
        batch = CiphertextBatch.join(cts)
        assert len(batch) == 1
        out = batch.split()
        assert [p.residues for p in out[0].polys] == [
            p.residues for p in cts[0].polys
        ]

    def test_ragged_sizes_raise(self, env):
        ct2, other = fresh_cts(env, 2)
        ct3 = env["evaluator"].multiply(ct2, other)  # size 3
        with pytest.raises(ValueError, match="ragged batch.*size"):
            CiphertextBatch.join([ct2, ct3])

    def test_mixed_level_raises(self, env):
        ct, other = fresh_cts(env, 2)
        ev = env["evaluator"]
        dropped = ev.rescale(
            ev.relinearize(ev.multiply(ct, other), env["keygen"].relin_key())
        )  # size 2 again, but one level fewer
        dropped.scale = ct.scale  # isolate the basis check from the scale one
        fresh = fresh_cts(env, 1)[0]
        with pytest.raises(ValueError, match="mixed-level"):
            CiphertextBatch.join([fresh, dropped])

    def test_ragged_ring_degree_raises(self, env):
        small_ctx = CkksContext(toy_parameters(n=32, k=3, prime_bits=30))
        small_ct = Encryptor(
            small_ctx, KeyGenerator(small_ctx, seed=41).public_key(), seed=42
        ).encrypt(CkksEncoder(small_ctx).encode(1.0))
        with pytest.raises(ValueError, match="ring degree"):
            CiphertextBatch.join([fresh_cts(env, 1)[0], small_ct])

    def test_mismatched_scale_raises(self, env):
        a = fresh_cts(env, 1)[0]
        b = fresh_cts(env, 1)[0]
        b.scale = a.scale * 2
        with pytest.raises(ValueError, match="share scale"):
            CiphertextBatch.join([a, b])

    def test_mixed_ntt_form_raises(self, env):
        a, b = fresh_cts(env, 2)
        coeff = Ciphertext(
            [env["ctx"].from_ntt(p) for p in b.polys], b.scale
        )
        with pytest.raises(ValueError, match="NTT form"):
            CiphertextBatch.join([a, coeff])


# ---------------------------------------------------------------------------
# evaluator shape discipline
# ---------------------------------------------------------------------------
class TestEvaluatorDiscipline:
    def test_batch_count_mismatch_raises(self, env):
        bev = env["batch_evaluator"]
        with pytest.raises(ValueError, match="batch size mismatch"):
            bev.add(
                CiphertextBatch.join(fresh_cts(env, 2)),
                CiphertextBatch.join(fresh_cts(env, 3)),
            )

    def test_level_mismatch_raises(self, env):
        bev = env["batch_evaluator"]
        batch = CiphertextBatch.join(fresh_cts(env, 2))
        dropped = bev.rescale(bev.multiply(batch, batch))
        dropped.scale = batch.scale  # isolate the level check from the scale one
        with pytest.raises(ValueError, match="level mismatch"):
            bev.add(CiphertextBatch.join(fresh_cts(env, 2)), dropped)

    def test_basis_value_mismatch_raises(self, env):
        """Same level count but different primes must raise, as the
        scalar RnsPolynomial._check_compatible does."""
        other_ctx = CkksContext(toy_parameters(n=64, k=3, prime_bits=29))
        other_ct = Encryptor(
            other_ctx, KeyGenerator(other_ctx, seed=51).public_key(), seed=52
        ).encrypt(CkksEncoder(other_ctx).encode(1.0, scale=2.0**28))
        other = CiphertextBatch.join([other_ct, other_ct.clone()])
        other.scale = env["ctx"].params.scale  # isolate the basis check
        with pytest.raises(ValueError, match="basis mismatch"):
            env["batch_evaluator"].add(
                CiphertextBatch.join(fresh_cts(env, 2)), other
            )

    def test_plaintext_ntt_form_mismatch_raises(self, env):
        coeff_pt = env["encoder"].encode(1.0, to_ntt=False)
        batch = CiphertextBatch.join(fresh_cts(env, 2))
        coeff_pt.scale = batch.scale
        with pytest.raises(ValueError, match="NTT-form mismatch"):
            env["batch_evaluator"].add_plain(batch, coeff_pt)

    def test_relinearize_requires_size_three(self, env):
        bev = env["batch_evaluator"]
        batch = CiphertextBatch.join(fresh_cts(env, 2))
        with pytest.raises(ValueError, match="size-3"):
            bev.relinearize(batch, env["keygen"].relin_key())

    def test_rotate_requires_size_two(self, env):
        bev = env["batch_evaluator"]
        batch = CiphertextBatch.join(fresh_cts(env, 2))
        prod = bev.multiply(batch, batch)
        with pytest.raises(ValueError, match="relinearize"):
            bev.rotate(prod, 1, env["keygen"].galois_keys([1]))

    def test_rescale_at_last_level_raises(self, env):
        bev = env["batch_evaluator"]
        batch = CiphertextBatch.join(fresh_cts(env, 2))
        for _ in range(env["ctx"].k - 1):
            batch = bev.rescale(batch)
        with pytest.raises(ValueError, match="last level"):
            bev.rescale(batch)

    def test_multiply_produces_size_three(self, env):
        bev = env["batch_evaluator"]
        batch = CiphertextBatch.join(fresh_cts(env, 2))
        prod = bev.multiply(batch, batch)
        assert prod.size == 3
        assert prod.scale == batch.scale * batch.scale

    def test_add_mixed_sizes(self, env):
        """Size-3 + size-2 keeps the extra component, as in Evaluator."""
        bev = env["batch_evaluator"]
        batch = CiphertextBatch.join(fresh_cts(env, 2))
        prod = bev.multiply(batch, batch)
        prod.scale = batch.scale  # align for the addition-scale check
        out = bev.add(prod, batch)
        assert out.size == 3

    def test_batched_decrypt_matches_scalar(self, env):
        bev = env["batch_evaluator"]
        cts = fresh_cts(env, 3)
        batch = CiphertextBatch.join(cts)
        batched = bev.decrypt(env["decryptor"], batch)
        scalar = [env["decryptor"].decrypt(ct) for ct in cts]
        assert [p.poly.residues for p in batched] == [
            p.poly.residues for p in scalar
        ]

    def test_batched_encrypt_matches_scalar_order(self, env):
        """encrypt() consumes the sampler element-by-element in order."""
        enc = env["encoder"]
        pts = [enc.encode(float(b)) for b in range(3)]
        pk = env["keygen"].public_key()
        e1 = Encryptor(env["ctx"], pk, seed=71)
        e2 = Encryptor(env["ctx"], pk, seed=71)
        batch = env["batch_evaluator"].encrypt(e1, pts)
        scalar = [e2.encrypt(pt) for pt in pts]
        assert [
            [p.residues for p in ct.polys] for ct in batch.split()
        ] == [[p.residues for p in ct.polys] for ct in scalar]


class TestStackedKernelContract:
    """Shared backend contract details surfaced by the batch layer."""

    def test_stack_length_mismatch_raises_on_every_backend(self, env):
        from repro.ckks.backend import available_backends, create_backend

        m = env["ctx"].data_basis.moduli[0]
        a = [[1] * 64 for _ in range(3)]
        b = [[2] * 64 for _ in range(2)]
        one = [[3] * 64]  # a 1-row *stack* must not silently broadcast
        for name in available_backends():
            be = create_backend(name)
            with pytest.raises(ValueError):
                be.add_stack(m, a, b)
            with pytest.raises(ValueError):
                be.add_stack(m, a, one)
            with pytest.raises(ValueError):
                be.dyadic_mul_stack(m, a, one)
            with pytest.raises(ValueError):
                be.dyadic_mac_stack(m, a, b, [5] * 64)

    def test_galois_map_is_mutation_safe(self, env):
        """The public accessor must hand out a copy, not the cache."""
        ctx = env["ctx"]
        elt = ctx.galois_element_for_step(1)
        m = ctx.galois_map(elt)
        m[0] = (m[0][0], not m[0][1])
        assert ctx.galois_map(elt)[0] != m[0]


class TestBatchScaleHardening:
    """The batch path shares the hardened scale discipline."""

    def test_join_rejects_zero_scale_pair(self, env):
        a, b = fresh_cts(env, 2)
        a.scale = 0.0
        b.scale = 0.0
        # both zero: the old relative-tolerance test passed this pair
        with pytest.raises(ValueError, match="scale"):
            CiphertextBatch.join([a, b])

    def test_join_rejects_zero_scale_first_element(self, env):
        (a,) = fresh_cts(env, 1)
        a.scale = 0.0
        with pytest.raises(ValueError, match="non-positive"):
            CiphertextBatch.join([a])

    def test_join_rejects_negative_scale(self, env):
        a, b = fresh_cts(env, 2)
        b.scale = -b.scale
        with pytest.raises(ValueError, match="scale"):
            CiphertextBatch.join([a, b])

    def test_batch_add_rejects_zero_scale(self, env):
        bev = env["batch_evaluator"]
        b0 = CiphertextBatch.join(fresh_cts(env, 2))
        b1 = CiphertextBatch.join(fresh_cts(env, 2))
        b1.scale = 0.0
        with pytest.raises(ValueError, match="non-positive scale"):
            bev.add(b0, b1)
