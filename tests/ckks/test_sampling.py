"""Tests for the RLWE sampling distributions."""

import math

import pytest

from repro.ckks.modarith import Modulus
from repro.ckks.primes import make_modulus_chain
from repro.ckks.rns import RnsBasis
from repro.ckks.sampling import (
    ERROR_STDDEV,
    ERROR_TRUNCATION_SIGMAS,
    Sampler,
)

MODULI = make_modulus_chain(64, [30, 29])


class TestTernary:
    def test_support(self):
        s = Sampler(1)
        vals = s.ternary_coeffs(10_000)
        assert set(vals) == {-1, 0, 1}

    def test_roughly_uniform(self):
        s = Sampler(2)
        vals = s.ternary_coeffs(30_000)
        for v in (-1, 0, 1):
            frac = vals.count(v) / len(vals)
            assert abs(frac - 1 / 3) < 0.02

    def test_seeded_determinism(self):
        assert Sampler(7).ternary_coeffs(100) == Sampler(7).ternary_coeffs(100)

    def test_different_seeds_differ(self):
        assert Sampler(1).ternary_coeffs(100) != Sampler(2).ternary_coeffs(100)


class TestGaussian:
    def test_truncation_bound(self):
        s = Sampler(3)
        bound = math.ceil(ERROR_TRUNCATION_SIGMAS * ERROR_STDDEV)
        vals = s.gaussian_coeffs(20_000)
        assert max(abs(v) for v in vals) <= bound

    def test_mean_near_zero(self):
        s = Sampler(4)
        vals = s.gaussian_coeffs(20_000)
        assert abs(sum(vals) / len(vals)) < 0.1

    def test_stddev_near_sigma(self):
        s = Sampler(5)
        vals = s.gaussian_coeffs(20_000)
        var = sum(v * v for v in vals) / len(vals)
        assert abs(math.sqrt(var) - ERROR_STDDEV) < 0.2

    def test_custom_stddev(self):
        s = Sampler(6)
        wide = s.gaussian_coeffs(5000, stddev=10.0)
        var = sum(v * v for v in wide) / len(wide)
        assert 8.0 < math.sqrt(var) < 12.0


class TestUniform:
    def test_in_range_per_modulus(self):
        s = Sampler(8)
        poly = s.uniform_residues(64, MODULI)
        assert poly.is_ntt
        for m, row in zip(MODULI, poly.residues):
            assert all(0 <= v < m.value for v in row)

    def test_covers_range(self):
        s = Sampler(9)
        poly = s.uniform_residues(64, MODULI)
        # with 64 draws from a 2^30 range, values should be spread out
        row = poly.residues[0]
        assert max(row) > MODULI[0].value // 2
        assert len(set(row)) == len(row)


class TestPolyWrappers:
    def test_ternary_poly_residues_consistent(self):
        s = Sampler(10)
        poly = s.ternary_poly(64, MODULI)
        assert not poly.is_ntt
        basis = RnsBasis(MODULI)
        for v in basis.compose_centered_rows(poly.rows):
            assert v in (-1, 0, 1)

    def test_gaussian_poly_residues_consistent(self):
        s = Sampler(11)
        poly = s.gaussian_poly(64, MODULI)
        basis = RnsBasis(MODULI)
        bound = math.ceil(ERROR_TRUNCATION_SIGMAS * ERROR_STDDEV)
        for v in basis.compose_centered_rows(poly.rows):
            assert abs(v) <= bound
