"""Unit tests for RNS polynomials and ciphertext/plaintext containers."""

import random

import pytest

from repro.ckks.modarith import Modulus
from repro.ckks.poly import (
    Ciphertext,
    Plaintext,
    RnsPolynomial,
    restrict_to_moduli,
)
from repro.ckks.primes import make_modulus_chain

N = 16
MODULI = make_modulus_chain(N, [20, 20, 19])


def rand_rns(seed, moduli=MODULI, is_ntt=False):
    rng = random.Random(seed)
    residues = [[rng.randrange(m.value) for _ in range(N)] for m in moduli]
    return RnsPolynomial(N, moduli, residues, is_ntt)


class TestConstruction:
    def test_zero_default(self):
        p = RnsPolynomial(N, MODULI)
        assert all(all(x == 0 for x in row) for row in p.residues)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RnsPolynomial(N, MODULI, [[0] * N])
        with pytest.raises(ValueError):
            RnsPolynomial(N, MODULI, [[0] * (N - 1) for _ in MODULI])

    def test_from_int_coeffs_reduces_negatives(self):
        coeffs = [-1] + [0] * (N - 1)
        p = RnsPolynomial.from_int_coeffs(coeffs, MODULI)
        for m, row in zip(MODULI, p.residues):
            assert row[0] == m.value - 1

    def test_clone_is_deep(self):
        p = rand_rns(0)
        q = p.clone()
        row = q.component(0)
        row[0] = (row[0] + 1) % MODULI[0].value
        q.set_row(0, row)
        assert p != q

    def test_residues_is_a_materialized_snapshot(self):
        """The compat accessor lowers to lists; writing to the snapshot
        must never reach the polynomial (use set_row for that)."""
        p = rand_rns(42)
        snapshot = p.residues
        snapshot[0][0] = (snapshot[0][0] + 1) % MODULI[0].value
        assert p.residues != snapshot
        assert p.residues == rand_rns(42).residues

    def test_set_row_writes_through(self):
        p = rand_rns(43)
        new_row = [(v + 1) % MODULI[1].value for v in p.component(1)]
        p.set_row(1, new_row)
        assert p.component(1) == new_row


class TestArithmetic:
    def test_add_sub_roundtrip(self):
        a, b = rand_rns(1), rand_rns(2)
        assert a.add(b).sub(b) == a

    def test_add_commutative(self):
        a, b = rand_rns(3), rand_rns(4)
        assert a.add(b) == b.add(a)

    def test_negate_is_additive_inverse(self):
        a = rand_rns(5)
        zero = RnsPolynomial(N, MODULI)
        assert a.add(a.negate()) == zero

    def test_dyadic_multiply_componentwise(self):
        a, b = rand_rns(6, is_ntt=True), rand_rns(7, is_ntt=True)
        prod = a.dyadic_multiply(b)
        for m, ra, rb, rp in zip(MODULI, a.residues, b.residues, prod.residues):
            assert rp == [x * y % m.value for x, y in zip(ra, rb)]

    def test_multiply_scalar_int(self):
        a = rand_rns(8)
        out = a.multiply_scalar(3)
        for m, ra, ro in zip(MODULI, a.residues, out.residues):
            assert ro == [3 * x % m.value for x in ra]

    def test_multiply_scalar_per_modulus(self):
        a = rand_rns(9)
        scalars = [2, 3, 5]
        out = a.multiply_scalar(scalars)
        for m, s, ra, ro in zip(MODULI, scalars, a.residues, out.residues):
            assert ro == [s * x % m.value for x in ra]

    def test_domain_mismatch_rejected(self):
        a = rand_rns(10, is_ntt=True)
        b = rand_rns(11, is_ntt=False)
        with pytest.raises(ValueError):
            a.add(b)

    def test_basis_mismatch_rejected(self):
        a = rand_rns(12)
        other = make_modulus_chain(N, [20, 20])
        b = rand_rns(13, moduli=other)
        with pytest.raises(ValueError):
            a.add(b)


class TestBasisOps:
    def test_drop_last_component(self):
        a = rand_rns(14)
        b = a.drop_last_component()
        assert b.level_count == 2
        assert b.residues == a.residues[:2]

    def test_restrict_to_moduli_selects_rows(self):
        a = rand_rns(15)
        sub = restrict_to_moduli(a, [MODULI[2], MODULI[0]])
        assert sub.residues[0] == a.residues[2]
        assert sub.residues[1] == a.residues[0]

    def test_restrict_missing_modulus_rejected(self):
        a = rand_rns(16)
        stranger = make_modulus_chain(N, [18])[0]
        with pytest.raises(ValueError):
            restrict_to_moduli(a, [stranger])


class TestContainers:
    def test_plaintext_properties(self):
        pt = Plaintext(rand_rns(17), 2.0**20)
        assert pt.n == N
        assert pt.level_count == 3
        assert pt.clone().scale == pt.scale

    def test_ciphertext_shape_checks(self):
        polys = [rand_rns(18, is_ntt=True), rand_rns(19, is_ntt=True)]
        ct = Ciphertext(polys, 2.0**20)
        assert ct.size == 2
        assert ct.is_ntt
        with pytest.raises(ValueError):
            Ciphertext([], 1.0)

    def test_ciphertext_mixed_basis_rejected(self):
        a = rand_rns(20, is_ntt=True)
        b = rand_rns(21, moduli=make_modulus_chain(N, [20, 20]), is_ntt=True)
        with pytest.raises(ValueError):
            Ciphertext([a, b], 1.0)

    def test_ciphertext_clone_independent(self):
        ct = Ciphertext([rand_rns(22, is_ntt=True), rand_rns(23, is_ntt=True)], 1.0)
        original_value = ct.polys[0].component(0)[0]
        cl = ct.clone()
        row = cl.polys[0].component(0)
        row[0] = (original_value + 1) % MODULI[0].value
        cl.polys[0].set_row(0, row)
        assert ct.polys[0].component(0)[0] == original_value
