"""Encryption/decryption correctness, both public-key and symmetric."""

import numpy as np
import pytest

from repro.ckks.decryptor import Decryptor
from repro.ckks.encryptor import Encryptor
from repro.ckks.keys import KeyGenerator


class TestPublicKeyEncryption:
    def test_roundtrip(self, encoder, encryptor, decryptor):
        vals = np.array([1.0, -2.5, 0.125, 3.75])
        ct = encryptor.encrypt(encoder.encode(vals))
        out = encoder.decode(decryptor.decrypt(ct))
        assert np.allclose(out[:4], vals, atol=1e-3)

    def test_fresh_ciphertext_shape(self, encoder, encryptor, toy_context):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        assert ct.size == 2
        assert ct.level_count == toy_context.k
        assert ct.is_ntt

    def test_randomized(self, encoder, encryptor):
        pt = encoder.encode([1.0])
        c1, c2 = encryptor.encrypt(pt), encryptor.encrypt(pt)
        assert c1.polys[1] != c2.polys[1]

    def test_complex_values(self, encoder, encryptor, decryptor):
        vals = np.array([0.5 + 1.0j, -0.25 - 0.75j])
        ct = encryptor.encrypt(encoder.encode(vals))
        out = encoder.decode(decryptor.decrypt(ct))
        assert np.allclose(out[:2], vals, atol=1e-3)

    def test_lower_level_encryption(self, encoder, encryptor, decryptor):
        pt = encoder.encode([2.0], level_count=2)
        ct = encryptor.encrypt(pt)
        assert ct.level_count == 2
        out = encoder.decode(decryptor.decrypt(ct))
        assert np.isclose(out[0].real, 2.0, atol=1e-3)


class TestSymmetricEncryption:
    def test_roundtrip(self, encoder, sym_encryptor, decryptor):
        vals = np.array([-1.0, 4.0, 0.0625])
        ct = sym_encryptor.encrypt(encoder.encode(vals))
        out = encoder.decode(decryptor.decrypt(ct))
        assert np.allclose(out[:3], vals, atol=1e-3)

    def test_symmetric_c1_is_uniform_not_keyed(self, encoder, sym_encryptor):
        ct = sym_encryptor.encrypt(encoder.encode([1.0]))
        assert ct.size == 2


class TestKeyMismatch:
    def test_wrong_key_fails_to_decrypt(self, toy_context, encoder, encryptor):
        other = KeyGenerator(toy_context, seed=999)
        wrong = Decryptor(toy_context, other.secret_key)
        vals = np.array([1.0, 2.0])
        ct = encryptor.encrypt(encoder.encode(vals))
        out = encoder.decode(wrong.decrypt(ct))
        assert not np.allclose(out[:2], vals, atol=0.5)

    def test_encryptor_rejects_bad_key_type(self, toy_context):
        with pytest.raises(TypeError):
            Encryptor(toy_context, object())


class TestNoise:
    def test_fresh_noise_budget_positive(self, toy_context, encoder, encryptor, decryptor):
        pt = encoder.encode([1.0])
        ct = encryptor.encrypt(pt)
        budget = decryptor.invariant_noise_budget_proxy(ct, pt)
        assert budget > 20  # plenty of headroom in a fresh ciphertext

    def test_adding_ciphertexts_grows_noise(
        self, toy_context, encoder, encryptor, decryptor, evaluator
    ):
        pt = encoder.encode([1.0])
        ct = encryptor.encrypt(pt)
        b0 = decryptor.invariant_noise_budget_proxy(ct, pt)
        acc = ct
        from repro.ckks.poly import Plaintext

        ref = pt
        for _ in range(4):
            acc = evaluator.add(acc, acc)
            ref = Plaintext(ref.poly.add(ref.poly), ref.scale)
        b1 = decryptor.invariant_noise_budget_proxy(acc, ref)
        assert b1 <= b0
