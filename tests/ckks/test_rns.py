"""Unit and property tests for RNS bases and the gadget decomposition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks.modarith import Modulus
from repro.ckks.primes import make_modulus_chain
from repro.ckks.rns import RnsBasis


@pytest.fixture(scope="module")
def basis():
    return RnsBasis(make_modulus_chain(64, [30, 30, 29]))


class TestConstruction:
    def test_rejects_duplicates(self):
        m = Modulus(1153)  # 1153 = 1 mod 128
        with pytest.raises(ValueError):
            RnsBasis([m, m])

    def test_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            RnsBasis([Modulus(15), Modulus(25)])

    def test_product(self, basis):
        prod = 1
        for m in basis:
            prod *= m.value
        assert basis.product == prod

    def test_len_and_indexing(self, basis):
        assert len(basis) == 3
        assert basis[0].value == basis.moduli[0].value


class TestCrt:
    def test_roundtrip_zero_and_small(self, basis):
        for v in (0, 1, 12345):
            assert basis.compose(basis.decompose(v)) == v

    def test_roundtrip_near_q(self, basis):
        q = basis.product
        for v in (q - 1, q // 2, q // 3):
            assert basis.compose(basis.decompose(v)) == v

    def test_centered_compose(self, basis):
        q = basis.product
        assert basis.compose_centered(basis.decompose(q - 1)) == -1
        assert basis.compose_centered(basis.decompose(1)) == 1

    @given(st.data())
    @settings(max_examples=100)
    def test_roundtrip_property(self, basis, data):
        v = data.draw(st.integers(min_value=0, max_value=basis.product - 1))
        assert basis.compose(basis.decompose(v)) == v

    def test_compose_validates_length(self, basis):
        with pytest.raises(ValueError):
            basis.compose([1, 2])


class TestPuncturedProducts:
    def test_punctured_product(self, basis):
        for i in range(len(basis)):
            assert basis.punctured_product(i) * basis[i].value == basis.product

    def test_punctured_inverse(self, basis):
        for i in range(len(basis)):
            p = basis[i].value
            pi = basis.punctured_product(i) % p
            assert pi * basis.punctured_inverse(i) % p == 1


class TestGadget:
    def test_gadget_identity(self, basis):
        """<g, g^-1(a)> = a (mod q) -- the Section 2 defining property."""
        g = basis.gadget_vector()
        q = basis.product
        for a in (0, 1, q - 1, q // 7, 123456789):
            digits = basis.gadget_decompose(basis.decompose(a))
            assert sum(gi * di for gi, di in zip(g, digits)) % q == a % q

    def test_gadget_kronecker_structure(self, basis):
        """g_i = 1 mod p_i and 0 mod p_j -- what Algorithm 7 exploits."""
        g = basis.gadget_vector()
        for i, gi in enumerate(g):
            for j, m in enumerate(basis):
                assert gi % m.value == (1 if i == j else 0)

    @given(st.data())
    @settings(max_examples=50)
    def test_gadget_identity_property(self, basis, data):
        a = data.draw(st.integers(min_value=0, max_value=basis.product - 1))
        g = basis.gadget_vector()
        digits = basis.gadget_decompose(basis.decompose(a))
        assert sum(gi * di for gi, di in zip(g, digits)) % basis.product == a


class TestBasisManipulation:
    def test_drop_last(self, basis):
        smaller = basis.drop_last()
        assert len(smaller) == len(basis) - 1
        assert [m.value for m in smaller] == [m.value for m in basis.moduli[:-1]]

    def test_drop_last_exhaustion(self):
        b = RnsBasis(make_modulus_chain(64, [30]))
        with pytest.raises(ValueError):
            b.drop_last()

    def test_extend(self, basis):
        extra = make_modulus_chain(64, [28])[0]
        bigger = basis.extend(extra)
        assert len(bigger) == 4
        assert bigger.moduli[-1].value == extra.value


class TestComposeRows:
    """Whole-vector CRT composition (the decode fast path)."""

    def _rand_rows(self, basis, seed, n=64):
        import random

        rng = random.Random(seed)
        return [
            [rng.randrange(m.value) for _ in range(n)] for m in basis.moduli
        ]

    def test_compose_rows_matches_scalar_compose(self, basis):
        rows = self._rand_rows(basis, 1)
        got = basis.compose_rows(rows)
        want = [
            basis.compose([rows[j][i] for j in range(len(basis))])
            for i in range(64)
        ]
        assert got == want

    def test_compose_centered_rows_matches_scalar(self, basis):
        rows = self._rand_rows(basis, 2)
        got = basis.compose_centered_rows(rows)
        want = [
            basis.compose_centered([rows[j][i] for j in range(len(basis))])
            for i in range(64)
        ]
        assert got == want

    def test_compose_rows_single_modulus(self):
        b = RnsBasis(make_modulus_chain(64, [30]))
        rows = self._rand_rows(b, 3)
        assert b.compose_rows(rows) == rows[0]

    def test_compose_rows_big_prime_fallback(self):
        """Primes outside the word-size-safe envelope route through the
        exact scalar path (same values, no float Barrett)."""
        b = RnsBasis(make_modulus_chain(64, [60, 59], word_bits=64))
        rows = self._rand_rows(b, 4)
        got = b.compose_rows(rows)
        want = [
            b.compose([rows[j][i] for j in range(len(b))]) for i in range(64)
        ]
        assert got == want

    def test_compose_rows_big_prime_fallback_with_array_rows(self):
        """Regression: array-resident rows hitting the scalar fallback
        must materialize to Python ints first -- np.uint64 scalars in
        the big-int CRT sum overflow instead of widening."""
        np = pytest.importorskip("numpy")
        b = RnsBasis(make_modulus_chain(64, [60, 59], word_bits=64))
        rows = self._rand_rows(b, 7)
        arr = np.asarray(rows, dtype=np.uint64)
        assert b.compose_rows(arr) == b.compose_rows(rows)
        assert b.compose_centered_rows(arr) == b.compose_centered_rows(rows)

    def test_compose_rows_shape_check(self, basis):
        with pytest.raises(ValueError):
            basis.compose_rows([[0] * 64])
