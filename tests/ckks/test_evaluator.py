"""Evaluator tests: add/sub/mul/plain ops/rescale (Algorithms 5 and 6)."""

import numpy as np
import pytest

VALS_A = np.array([1.0, -2.0, 0.5, 3.0])
VALS_B = np.array([0.25, 4.0, -1.5, 2.0])


def enc(encoder, encryptor, vals, **kw):
    return encryptor.encrypt(encoder.encode(vals, **kw))


def dec(encoder, decryptor, ct, n=4):
    return encoder.decode(decryptor.decrypt(ct))[:n]


class TestAddSub:
    def test_add(self, encoder, encryptor, decryptor, evaluator):
        ct = evaluator.add(
            enc(encoder, encryptor, VALS_A), enc(encoder, encryptor, VALS_B)
        )
        assert np.allclose(dec(encoder, decryptor, ct), VALS_A + VALS_B, atol=1e-3)

    def test_sub(self, encoder, encryptor, decryptor, evaluator):
        ct = evaluator.sub(
            enc(encoder, encryptor, VALS_A), enc(encoder, encryptor, VALS_B)
        )
        assert np.allclose(dec(encoder, decryptor, ct), VALS_A - VALS_B, atol=1e-3)

    def test_negate(self, encoder, encryptor, decryptor, evaluator):
        ct = evaluator.negate(enc(encoder, encryptor, VALS_A))
        assert np.allclose(dec(encoder, decryptor, ct), -VALS_A, atol=1e-3)

    def test_add_plain(self, encoder, encryptor, decryptor, evaluator):
        ct = evaluator.add_plain(
            enc(encoder, encryptor, VALS_A), encoder.encode(VALS_B)
        )
        assert np.allclose(dec(encoder, decryptor, ct), VALS_A + VALS_B, atol=1e-3)

    def test_sub_plain(self, encoder, encryptor, decryptor, evaluator):
        ct = evaluator.sub_plain(
            enc(encoder, encryptor, VALS_A), encoder.encode(VALS_B)
        )
        assert np.allclose(dec(encoder, decryptor, ct), VALS_A - VALS_B, atol=1e-3)

    def test_scale_mismatch_rejected(self, encoder, encryptor, evaluator):
        a = enc(encoder, encryptor, VALS_A)
        b = enc(encoder, encryptor, VALS_B, scale=2.0**20)
        with pytest.raises(ValueError):
            evaluator.add(a, b)

    def test_level_mismatch_rejected(self, encoder, encryptor, evaluator):
        a = enc(encoder, encryptor, VALS_A)
        b = enc(encoder, encryptor, VALS_B, level_count=2)
        with pytest.raises(ValueError):
            evaluator.add(a, b)

    def test_add_mixed_sizes(self, encoder, encryptor, decryptor, evaluator):
        """Adding a size-3 (unrelinearized) and a size-2 ciphertext."""
        a, b = enc(encoder, encryptor, VALS_A), enc(encoder, encryptor, VALS_B)
        prod = evaluator.multiply(a, b)  # size 3, scale Delta^2
        sq = evaluator.multiply(b, a)
        total = evaluator.add(prod, sq)
        assert total.size == 3
        expected = 2 * VALS_A * VALS_B
        assert np.allclose(dec(encoder, decryptor, total), expected, atol=1e-2)


class TestMultiply:
    def test_ciphertext_product_size3(self, encoder, encryptor, decryptor, evaluator):
        prod = evaluator.multiply(
            enc(encoder, encryptor, VALS_A), enc(encoder, encryptor, VALS_B)
        )
        assert prod.size == 3
        assert np.allclose(dec(encoder, decryptor, prod), VALS_A * VALS_B, atol=1e-2)

    def test_scale_multiplies(self, encoder, encryptor, evaluator, toy_context):
        a, b = enc(encoder, encryptor, VALS_A), enc(encoder, encryptor, VALS_B)
        prod = evaluator.multiply(a, b)
        assert prod.scale == pytest.approx(a.scale * b.scale)

    def test_square_matches_multiply(self, encoder, encryptor, decryptor, evaluator):
        a = enc(encoder, encryptor, VALS_A)
        sq = evaluator.square(a)
        assert np.allclose(dec(encoder, decryptor, sq), VALS_A**2, atol=1e-2)

    def test_multiply_plain(self, encoder, encryptor, decryptor, evaluator):
        ct = evaluator.multiply_plain(
            enc(encoder, encryptor, VALS_A), encoder.encode(VALS_B)
        )
        assert np.allclose(dec(encoder, decryptor, ct), VALS_A * VALS_B, atol=1e-2)

    def test_three_way_product_size4(self, encoder, encryptor, decryptor, evaluator):
        a = enc(encoder, encryptor, VALS_A)
        b = enc(encoder, encryptor, VALS_B)
        c = enc(encoder, encryptor, np.array([2.0, 2.0, 2.0, 2.0]))
        prod = evaluator.multiply(evaluator.multiply(a, b), c)
        assert prod.size == 4
        assert np.allclose(
            dec(encoder, decryptor, prod), VALS_A * VALS_B * 2.0, atol=0.05
        )


class TestRescale:
    def test_rescale_drops_level_and_scale(
        self, encoder, encryptor, evaluator, toy_context
    ):
        a, b = enc(encoder, encryptor, VALS_A), enc(encoder, encryptor, VALS_B)
        prod = evaluator.multiply(a, b)
        res = evaluator.rescale(prod)
        assert res.level_count == prod.level_count - 1
        last_prime = prod.moduli[-1].value
        assert res.scale == pytest.approx(prod.scale / last_prime)

    def test_rescale_preserves_values(self, encoder, encryptor, decryptor, evaluator):
        a, b = enc(encoder, encryptor, VALS_A), enc(encoder, encryptor, VALS_B)
        res = evaluator.rescale(evaluator.multiply(a, b))
        assert np.allclose(dec(encoder, decryptor, res), VALS_A * VALS_B, atol=1e-2)

    def test_rescale_exhaustion(self, encoder, encryptor, evaluator, toy_context):
        ct = enc(encoder, encryptor, VALS_A, level_count=1)
        with pytest.raises(ValueError):
            evaluator.rescale(ct)

    def test_two_consecutive_rescales(
        self, encoder, encryptor, decryptor, evaluator, relin_key
    ):
        """depth-2: ((a*b) rescaled) * (a*b rescaled) then rescale again."""
        a = enc(encoder, encryptor, VALS_A)
        b = enc(encoder, encryptor, VALS_B)
        ab = evaluator.rescale(evaluator.relinearize(evaluator.multiply(a, b), relin_key))
        sq = evaluator.rescale(
            evaluator.relinearize(evaluator.multiply(ab, ab), relin_key)
        )
        assert sq.level_count == 1
        expected = (VALS_A * VALS_B) ** 2
        assert np.allclose(dec(encoder, decryptor, sq), expected, atol=0.1)


class TestScaleCheckHardening:
    """check_scales must reject degenerate scales, not pass vacuously.

    With ``max(a, b) <= 0`` the relative-tolerance bound is non-positive,
    so before the fix *any* pair containing a zero/negative scale passed
    the mismatch test.
    """

    def test_zero_scale_rejected(self):
        from repro.ckks.evaluator import check_scales

        with pytest.raises(ValueError, match="non-positive scale"):
            check_scales(0.0, 0.0)
        with pytest.raises(ValueError, match="non-positive scale"):
            check_scales(0.0, 2.0**40)
        with pytest.raises(ValueError, match="non-positive scale"):
            check_scales(2.0**40, 0.0)

    def test_negative_scale_rejected(self):
        from repro.ckks.evaluator import check_scales

        with pytest.raises(ValueError, match="non-positive scale"):
            check_scales(-1.0, 1e30)
        with pytest.raises(ValueError, match="non-positive scale"):
            check_scales(-2.0**28, -2.0**28)

    def test_nan_scale_rejected(self):
        from repro.ckks.evaluator import check_scales

        with pytest.raises(ValueError, match="non-positive scale"):
            check_scales(float("nan"), 2.0**28)

    def test_valid_scales_still_pass(self):
        from repro.ckks.evaluator import check_scales

        check_scales(2.0**28, 2.0**28)
        check_scales(2.0**28, 2.0**28 * (1 + 1e-12))

    def test_genuine_mismatch_still_raises(self):
        from repro.ckks.evaluator import check_scales

        with pytest.raises(ValueError, match="scale mismatch"):
            check_scales(2.0**28, 2.0**29)

    def test_add_rejects_zero_scale_operand(
        self, encoder, encryptor, evaluator
    ):
        a = enc(encoder, encryptor, VALS_A)
        b = enc(encoder, encryptor, VALS_B)
        b.scale = 0.0
        with pytest.raises(ValueError, match="non-positive scale"):
            evaluator.add(a, b)
