"""Rotation and conjugation tests (Galois automorphism + KeySwitch)."""

import numpy as np
import pytest


def enc(encoder, encryptor, vals):
    return encryptor.encrypt(encoder.encode(vals))


def dec_all(encoder, decryptor, ct):
    return encoder.decode(decryptor.decrypt(ct))


@pytest.fixture(scope="module")
def slot_values(encoder):
    rng = np.random.default_rng(42)
    return rng.uniform(-2, 2, encoder.slot_count)


class TestRotation:
    def test_rotate_by_one(
        self, encoder, encryptor, decryptor, evaluator, galois_keys, slot_values
    ):
        ct = enc(encoder, encryptor, slot_values)
        out = dec_all(encoder, decryptor, evaluator.rotate(ct, 1, galois_keys))
        assert np.allclose(out.real, np.roll(slot_values, -1), atol=1e-2)

    def test_rotate_by_two(
        self, encoder, encryptor, decryptor, evaluator, galois_keys, slot_values
    ):
        ct = enc(encoder, encryptor, slot_values)
        out = dec_all(encoder, decryptor, evaluator.rotate(ct, 2, galois_keys))
        assert np.allclose(out.real, np.roll(slot_values, -2), atol=1e-2)

    def test_rotate_zero_is_identity_semantics(
        self, encoder, encryptor, decryptor, evaluator, keygen, slot_values
    ):
        keys = keygen.galois_keys([0])
        ct = enc(encoder, encryptor, slot_values)
        out = dec_all(encoder, decryptor, evaluator.rotate(ct, 0, keys))
        assert np.allclose(out.real, slot_values, atol=1e-2)

    def test_composed_rotations(
        self, encoder, encryptor, decryptor, evaluator, galois_keys, slot_values
    ):
        ct = enc(encoder, encryptor, slot_values)
        r1 = evaluator.rotate(ct, 1, galois_keys)
        r12 = evaluator.rotate(r1, 2, galois_keys)
        out = dec_all(encoder, decryptor, r12)
        assert np.allclose(out.real, np.roll(slot_values, -3), atol=1e-2)

    def test_negative_rotation_wraps(
        self, encoder, encryptor, decryptor, evaluator, keygen, slot_values
    ):
        keys = keygen.galois_keys([-1])
        ct = enc(encoder, encryptor, slot_values)
        out = dec_all(encoder, decryptor, evaluator.rotate(ct, -1, keys))
        assert np.allclose(out.real, np.roll(slot_values, 1), atol=1e-2)

    def test_full_cycle_returns_original(
        self, encoder, encryptor, decryptor, evaluator, keygen, slot_values
    ):
        """Rotating by slot_count returns the original vector."""
        keys = keygen.galois_keys([encoder.slot_count])
        ct = enc(encoder, encryptor, slot_values)
        out = dec_all(
            encoder, decryptor, evaluator.rotate(ct, encoder.slot_count, keys)
        )
        assert np.allclose(out.real, slot_values, atol=1e-2)

    def test_rotation_requires_size2(
        self, encoder, encryptor, evaluator, galois_keys
    ):
        a = enc(encoder, encryptor, np.array([1.0]))
        prod = evaluator.multiply(a, a)
        with pytest.raises(ValueError):
            evaluator.rotate(prod, 1, galois_keys)

    def test_missing_key_raises(self, encoder, encryptor, evaluator, galois_keys):
        ct = enc(encoder, encryptor, np.array([1.0]))
        with pytest.raises(KeyError):
            evaluator.rotate(ct, 7, galois_keys)  # only 1,2,3,5 generated

    def test_wrong_key_element_rejected(
        self, toy_context, encoder, encryptor, evaluator, galois_keys
    ):
        ct = enc(encoder, encryptor, np.array([1.0]))
        elt1 = toy_context.galois_element_for_step(1)
        key2 = galois_keys.key_for_element(toy_context.galois_element_for_step(2))
        with pytest.raises(ValueError):
            evaluator.apply_galois(ct, elt1, key2)


class TestConjugation:
    def test_conjugate(self, encoder, encryptor, decryptor, evaluator, galois_keys):
        vals = np.array([0.5 + 1.5j, -1.0 - 0.25j, 2.0 + 0.0j])
        ct = enc(encoder, encryptor, vals)
        out = dec_all(encoder, decryptor, evaluator.conjugate(ct, galois_keys))
        assert np.allclose(out[:3], np.conj(vals), atol=1e-2)

    def test_double_conjugation_is_identity(
        self, encoder, encryptor, decryptor, evaluator, galois_keys
    ):
        vals = np.array([1.0 + 2.0j, -3.0 + 0.5j])
        ct = enc(encoder, encryptor, vals)
        twice = evaluator.conjugate(
            evaluator.conjugate(ct, galois_keys), galois_keys
        )
        out = dec_all(encoder, decryptor, twice)
        assert np.allclose(out[:2], vals, atol=1e-2)


class TestRotationApplications:
    def test_rotate_and_sum_inner_product(
        self, encoder, encryptor, decryptor, evaluator, keygen
    ):
        """log-depth rotate-and-sum: every slot ends with the total sum --
        the reduction pattern of encrypted dot products (paper's MLaaS
        motivation)."""
        slots = encoder.slot_count
        rng = np.random.default_rng(3)
        vals = rng.uniform(-1, 1, slots)
        steps = []
        s = 1
        while s < slots:
            steps.append(s)
            s *= 2
        keys = keygen.galois_keys(steps)
        ct = enc(encoder, encryptor, vals)
        acc = ct
        s = 1
        while s < slots:
            acc = evaluator.add(acc, evaluator.rotate(acc, s, keys))
            s *= 2
        out = dec_all(encoder, decryptor, acc)
        assert np.allclose(out.real, vals.sum(), atol=0.05)
