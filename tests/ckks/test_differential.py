"""Randomized cross-backend differential tests (see ``differential.py``).

Each case drives one seeded random op program through reference/numpy ×
scalar/batched execution and asserts bit-identical ciphertexts at every
step plus a plaintext-model decode check.
"""

from __future__ import annotations

import pytest

from repro.ckks.backend import available_backends

# tests/ are not a package; pytest puts this directory on sys.path
from differential import (
    assert_differential,
    assert_plan_differential,
    generate_program,
)

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="differential tests compare the numpy backend against reference",
)


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_random_program_all_modes_bit_identical(seed):
    program = generate_program(seed, length=6)
    assert_differential(program, base_seed=1000 + seed)


def test_longer_program_deeper_chain():
    """Depth-4 chain: room for two multiply/rescale pairs in one program."""
    program = generate_program(99, length=9, k=4)
    assert_differential(program, k=4, base_seed=77)


def test_single_element_batch_matches_scalar_path():
    """batch_count=1: the degenerate batch must still be bit-exact."""
    program = generate_program(5, length=5)
    assert_differential(program, batch_count=1, base_seed=55)


def test_program_generator_is_deterministic_and_feasible():
    assert generate_program(7, length=8) == generate_program(7, length=8)
    program = generate_program(7, length=8, k=3)
    assert len(program) == 8
    # a generated program never rescales more often than the chain depth
    assert program.count("rescale") <= 2


def test_hoisted_rotation_program():
    """Hoisted vs plain vs batched rotations, interleaved with other ops."""
    program = [
        "rotate_hoisted",
        "add",
        "rotate",
        "rotate_hoisted",
        "negate",
        "conjugate",
    ]
    assert_differential(program, base_seed=404)


def test_matvec_program_all_modes_bit_identical():
    """The hoisting showcase op under the four-way bit-identity microscope
    (zero diagonals included -- the skip path must also be bit-exact)."""
    assert_differential(["matvec", "add"], base_seed=505)


def test_matvec_after_depth_consumption():
    """matvec at a lower level (keys generated at the top level restrict)."""
    assert_differential(
        ["mul_relin", "rescale", "matvec"], k=4, base_seed=606, atol=0.1
    )


def test_hoisted_rotation_at_last_level():
    """Work down to a single RNS component (scale kept alive by C-P
    multiplies), then rotate: the hoisted decomposition degenerates to
    one digit with an empty fan-out."""
    assert_differential(
        [
            "mul_plain",
            "rescale",
            "mul_plain",
            "rescale",
            "rotate_hoisted",
            "rotate",
        ],
        base_seed=707,
        atol=0.35,  # |slots| up to ~1 per operand; three multiplies compound
    )


def test_hoisted_ops_with_single_element_batch():
    """batch-of-1: the degenerate batch through the hoisted dataflow."""
    assert_differential(
        ["rotate_hoisted", "matvec"], batch_count=1, base_seed=808
    )


def test_generator_emits_hoisted_and_matvec_ops():
    programs = [generate_program(seed, length=12, k=4) for seed in range(20)]
    flat = [op for program in programs for op in program]
    assert "rotate_hoisted" in flat
    assert "matvec" in flat


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_program_planned_bit_identical(seed):
    """Plan mode: optimized and naive plan execution reproduce the scalar
    trace bit for bit on both backends (generated programs carry their
    own rescales, so placement is also asserted to be a no-op)."""
    program = generate_program(seed, length=6)
    assert_plan_differential(program, base_seed=1000 + seed)


def test_matvec_program_planned_bit_identical():
    """The planner's headline path: the matvec sweep fuses through one
    hoisted decomposition yet must stay bit-identical to scalar rotate."""
    assert_plan_differential(["matvec", "add"], base_seed=505)


def test_rotation_program_planned_bit_identical():
    """Explicit rotations across plan waves: per-chain rotations of the
    same wave pack into one sweep per source ciphertext."""
    assert_plan_differential(
        ["rotate", "add", "rotate_hoisted", "negate"], base_seed=404
    )


def test_planned_single_element_batch():
    """batch_count=1 leaves no packing opportunity; the plan must fall
    back to scalar steps and still match."""
    assert_plan_differential(
        ["mul_plain", "rescale", "rotate"], batch_count=1, base_seed=909
    )
