"""Randomized cross-backend differential tests (see ``differential.py``).

Each case drives one seeded random op program through reference/numpy ×
scalar/batched execution and asserts bit-identical ciphertexts at every
step plus a plaintext-model decode check.
"""

from __future__ import annotations

import pytest

from repro.ckks.backend import available_backends

# tests/ are not a package; pytest puts this directory on sys.path
from differential import assert_differential, generate_program

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="differential tests compare the numpy backend against reference",
)


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_random_program_all_modes_bit_identical(seed):
    program = generate_program(seed, length=6)
    assert_differential(program, base_seed=1000 + seed)


def test_longer_program_deeper_chain():
    """Depth-4 chain: room for two multiply/rescale pairs in one program."""
    program = generate_program(99, length=9, k=4)
    assert_differential(program, k=4, base_seed=77)


def test_single_element_batch_matches_scalar_path():
    """batch_count=1: the degenerate batch must still be bit-exact."""
    program = generate_program(5, length=5)
    assert_differential(program, batch_count=1, base_seed=55)


def test_program_generator_is_deterministic_and_feasible():
    assert generate_program(7, length=8) == generate_program(7, length=8)
    program = generate_program(7, length=8, k=3)
    assert len(program) == 8
    # a generated program never rescales more often than the chain depth
    assert program.count("rescale") <= 2
