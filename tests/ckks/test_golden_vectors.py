"""Golden known-answer tests against the frozen vectors in tests/vectors/.

Unlike the backend-equivalence and differential suites, these do *not*
put the reference backend in the loop at test time: every available
backend is checked against byte-frozen fixtures, so a regression that
changes both backends identically (twiddle tables, encoder, sampler
order) is still caught, and the checks run even on hosts with a single
backend.  Regenerate with ``python tests/vectors/regenerate.py`` only
when a change intentionally invalidates the vectors.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.ckks.backend import available_backends, use_backend

VECTORS_DIR = pathlib.Path(__file__).resolve().parent.parent / "vectors"

_spec = importlib.util.spec_from_file_location(
    "golden_regenerate", VECTORS_DIR / "regenerate.py"
)
regenerate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regenerate)


@pytest.fixture(scope="module")
def ntt_vectors():
    return json.loads((VECTORS_DIR / "ntt_n64.json").read_text())


@pytest.fixture(scope="module")
def trace_vectors():
    return json.loads((VECTORS_DIR / "trace_n1024.json").read_text())


@pytest.mark.parametrize("backend", available_backends())
def test_ntt_known_answers(backend, ntt_vectors):
    """Forward/inverse NTT and dyadic product reproduce the frozen rows."""
    with use_backend(backend):
        got = regenerate.compute_ntt_vectors()
    assert got == ntt_vectors, (
        f"backend {backend!r} diverged from the frozen NTT vectors"
    )


@pytest.mark.parametrize("backend", available_backends())
def test_pipeline_trace_digests(backend, trace_vectors):
    """Every stage digest of the n = 1024 golden trace matches."""
    with use_backend(backend):
        got = regenerate.compute_trace()
    assert got["digests"] == trace_vectors["digests"], (
        f"backend {backend!r} diverged from the frozen n=1024 trace"
    )


def test_trace_decodes_to_frozen_values(trace_vectors):
    """The decoded head matches the frozen slot values within tolerance.

    This is the end-to-end sanity anchor: even if someone regenerates
    digests to paper over a change, the decode must still approximate
    square of the original message -- checked against values stored at
    freeze time.
    """
    with use_backend(available_backends()[-1]):
        got = regenerate.compute_trace()
    atol = trace_vectors["decode_atol"]
    expected = [
        complex((i % 7) / 7.0, (i % 11) / 11.0 - 0.5) ** 2
        for i in range(regenerate.TRACE_HEAD_SLOTS)
    ]
    for i, ((re, im), want) in enumerate(
        zip(got["decoded_head"], expected)
    ):
        assert abs(complex(re, im) - want) < 10 * atol, (
            f"slot {i}: decoded {complex(re, im)} vs expected square {want}"
        )
    # and the frozen copy itself agrees with what we just computed
    for (re, im), (fre, fim) in zip(
        got["decoded_head"], trace_vectors["decoded_head"]
    ):
        assert abs(complex(re, im) - complex(fre, fim)) < atol
