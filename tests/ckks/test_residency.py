"""Data-residency contract of the backend-native polynomial storage.

Three properties pin the ISSUE-5 refactor down:

1. **Zero conversions on the hot chain** -- a warmed-up
   multiply -> relinearize -> rescale -> rotate chain performs no
   lift (lists -> native) or lower (native -> lists) conversions at
   all: every operand stays resident in the backend's native matrices,
   exactly as HEAX keeps operands in on-chip memories across the
   MULT -> KeySwitch pipeline (paper Section 4, Figure 2).
2. **Representation transparency** -- forcing every intermediate back
   through canonical Python lists after each step (the seed's
   list-interchange storage) yields bit-identical ciphertexts for the
   full differential-harness op set, on both backends and in both
   scalar and batched modes.
3. **Handle API round-trips** -- ``from_rows`` / ``to_rows`` /
   ``copy_rows`` / ``pack_rows`` / ``unpack_rows`` are exact inverses
   and produce independent storage where required.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.ckks.backend import CountingBackend, available_backends, create_backend
from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.poly import RnsPolynomial
from repro.ckks.primes import make_modulus_chain

from differential import generate_program, run_program

BACKENDS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            name not in available_backends(), reason=f"{name} unavailable"
        ),
    )
    for name in ("reference", "numpy")
]

N, K = 64, 3


def _chain_fixture(backend):
    ctx = CkksContext(toy_parameters(n=N, k=K, prime_bits=30), backend=backend)
    keygen = KeyGenerator(ctx, seed=71)
    encryptor = Encryptor(ctx, keygen.public_key(), seed=72)
    encoder = CkksEncoder(ctx)
    ev = Evaluator(ctx)
    relin = keygen.relin_key()
    galois = keygen.galois_keys([2])
    ct0 = encryptor.encrypt(encoder.encode(np.linspace(-1, 1, N // 2)))
    ct1 = encryptor.encrypt(encoder.encode(np.linspace(1, -1, N // 2)))
    return ev, relin, galois, ct0, ct1


def _hot_chain(ev, relin, galois, ct0, ct1):
    """The residency-gate composite: MULT -> Relin -> Rescale -> Rotate."""
    prod = ev.multiply(ct0, ct1)
    ct = ev.relinearize(prod, relin)
    ct = ev.rescale(ct)
    return ev.rotate(ct, 2, galois)


class TestZeroConversionHotChain:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_hot_chain_is_fully_resident(self, backend_name):
        be = CountingBackend(backend_name)
        ev, relin, galois, ct0, ct1 = _chain_fixture(be)
        # warm run: populates the per-key stacked-column caches and the
        # Galois gather tables (one-time setup, like loading keys into
        # accelerator DRAM)
        _hot_chain(ev, relin, galois, ct0, ct1)
        be.reset()
        out = _hot_chain(ev, relin, galois, ct0, ct1)
        assert out.size == 2
        assert be.counts["lift_rows"] == 0, dict(be.counts)
        assert be.counts["lower_rows"] == 0, dict(be.counts)
        # and the chain did real work while staying resident
        assert be.transform_rows > 0

    @pytest.mark.skipif(
        "numpy" not in available_backends(), reason="numpy unavailable"
    )
    def test_list_interchange_is_counted(self):
        """The counters must actually see conversions when the canonical
        list boundary *is* crossed -- otherwise the zero assertions
        above are vacuous."""
        be = CountingBackend("numpy")
        ev, relin, galois, ct0, ct1 = _chain_fixture(be)
        _hot_chain(ev, relin, galois, ct0, ct1)
        be.reset()
        # rebuild one operand from materialized Python lists: the next
        # operation must pay (and count) the lift
        from repro.ckks.poly import Ciphertext

        listy = Ciphertext(
            [
                RnsPolynomial(p.n, p.moduli, p.residues, p.is_ntt)
                for p in ct0.polys
            ],
            ct0.scale,
        )
        ev.multiply(listy, ct1)
        assert be.counts["lift_rows"] > 0
        be.reset()
        # materializing a resident handle counts as a lower
        be.to_rows(ct1.polys[0].native_rows(be))
        assert be.counts["lower_rows"] > 0


class TestNativeVsMaterialized:
    """Resident and list-materialized execution are bit-identical for
    the full differential-harness op set (satellite: cross-backend
    property test)."""

    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("mode", ["scalar", "batched"])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_rematerialized_steps_bit_identical(self, backend_name, mode, seed):
        program = generate_program(seed, length=6)
        kwargs = dict(n=N, k=K, batch_count=2, base_seed=4000 + seed)
        resident = run_program(program, backend_name, mode == "batched", **kwargs)
        listy = run_program(
            program, backend_name, mode == "batched", rematerialize=True, **kwargs
        )
        for step, (got, want) in enumerate(
            zip(listy["steps"], resident["steps"])
        ):
            assert got == want, (
                f"list-materialized {backend_name}/{mode} diverged from the "
                f"resident path at step {step} of {program}"
            )


class TestHandleRoundTrips:
    MODULI = make_modulus_chain(N, [30, 30, 29])

    def _rand_rows(self, seed):
        rng = random.Random(seed)
        return [
            [rng.randrange(m.value) for _ in range(N)] for m in self.MODULI
        ]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_from_to_rows_round_trip(self, backend_name):
        be = create_backend(backend_name)
        rows = self._rand_rows(1)
        handle = be.from_rows(rows)
        assert be.to_rows(handle) == rows
        # idempotent: lifting a native handle is a no-op
        again = be.from_rows(handle)
        assert be.to_rows(again) == rows

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_copy_rows_is_independent(self, backend_name):
        be = create_backend(backend_name)
        handle = be.from_rows(self._rand_rows(2))
        copy = be.copy_rows(handle)
        original = be.to_rows(handle)
        be.set_row(copy, 0, [0] * N)
        assert be.to_rows(handle) == original
        assert be.to_rows(copy)[0] == [0] * N

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_pack_unpack_round_trip(self, backend_name):
        be = create_backend(backend_name)
        rows = self._rand_rows(3)
        packed = be.pack_rows(be.from_rows(rows))
        assert len(packed) == len(self.MODULI) * N * 8
        assert be.to_rows(be.unpack_rows(packed, len(self.MODULI), N)) == rows

    @pytest.mark.skipif(
        "numpy" not in available_backends(), reason="numpy unavailable"
    )
    def test_pack_bytes_identical_across_backends(self):
        rows = self._rand_rows(4)
        ref = create_backend("reference")
        fast = create_backend("numpy")
        assert ref.pack_rows(ref.from_rows(rows)) == fast.pack_rows(
            fast.from_rows(rows)
        )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_select_and_insert_preserve_values(self, backend_name):
        be = create_backend(backend_name)
        rows = self._rand_rows(5)
        handle = be.from_rows(rows)
        sel = be.select_rows(handle, [2, 0])
        assert be.to_rows(sel) == [rows[2], rows[0]]
        ins = be.insert_row(sel, 1, be.get_row(handle, 1))
        assert be.to_rows(ins) == [rows[2], rows[1], rows[0]]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_rows_kernels_reject_row_count_mismatch(self, backend_name):
        """No silent zip truncation: a handle with fewer rows than
        moduli raises on every backend (interchangeability contract)."""
        be = create_backend(backend_name)
        handle = be.from_rows(self._rand_rows(7))
        short = be.select_rows(handle, [0, 1])
        one = be.select_rows(handle, [0])
        with pytest.raises(ValueError):
            be.add_rows(self.MODULI, short, short)
        with pytest.raises(ValueError):
            be.dyadic_mul_rows(self.MODULI, short, short)
        with pytest.raises(ValueError):
            # a 1-row operand must not broadcast against a full handle
            be.add_rows(self.MODULI, handle, one)
        with pytest.raises(ValueError):
            be.dyadic_mac_rows(self.MODULI, handle, handle, one)
        with pytest.raises(ValueError):
            be.galois_rows(self.MODULI, short, [(i, False) for i in range(N)])

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_clone_uses_native_copy(self, backend_name):
        be = create_backend(backend_name)
        poly = RnsPolynomial(N, self.MODULI, self._rand_rows(6))
        poly.native_rows(be)
        clone = poly.clone(backend=be)
        clone.set_row(0, [0] * N, backend=be)
        assert poly.component(0) != [0] * N
        if backend_name == "numpy":
            assert hasattr(clone.rows, "dtype")  # stayed native
