"""Reusable cross-backend differential harness.

Drives *seeded random operation sequences* (add / sub / multiply+relin /
rescale / rotate / conjugate / plain ops) through every combination of

* backend: ``reference`` vs ``numpy``, and
* execution mode: per-ciphertext :class:`~repro.ckks.evaluator.Evaluator`
  vs batched :class:`~repro.ckks.batch.BatchEvaluator`,

and asserts two properties:

1. **bit-identity** -- all four traces produce identical ciphertext
   residue rows after *every* step (the backends are interchangeable by
   contract, and a batched op is exactly N independent scalar ops);
2. **correctness** -- the final decode matches a plaintext model of the
   same program within CKKS precision.

Randomness discipline: both execution modes consume the encryption
sampler in the *same order* (step-major: within a step, operand
ciphertexts for elements 0..N-1 are encrypted in order), so a fixed
seed yields byte-identical ciphertexts whichever mode runs -- making
batched-vs-unbatched divergence a hard failure instead of a statistical
argument.

Programs are feasibility-aware: an op is only emitted when the tracked
(size, level) state can execute it, and every ciphertext-ciphertext
multiply is immediately relinearized and, when a level remains,
rescaled -- the standard CKKS idiom, which also keeps the plaintext
model's precision honest.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from repro.ckks.batch import BatchEvaluator
from repro.ckks.backend import use_backend
from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.decryptor import Decryptor
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.linear import LinearEvaluator

#: Ops a program may contain; weights bias toward the cheap ones so a
#: short program still exercises variety without exhausting levels.
_OP_WEIGHTS = (
    ("add", 3),
    ("sub", 2),
    ("mul_relin", 2),
    ("mul_plain", 2),
    ("rotate", 2),
    ("rotate_hoisted", 2),
    ("conjugate", 1),
    ("negate", 1),
    ("rescale", 1),
    ("matvec", 1),
)

#: Rotation step used by ``rotate``/``rotate_hoisted`` ops (its Galois
#: key is generated).  The hoisted variant must be bit-identical to the
#: plain one -- they share the digit-permuting dataflow by construction.
ROTATE_STEP = 1


def _matvec_matrix(dim: int, base_seed: int) -> np.ndarray:
    """The deterministic matvec operand: dim == slot_count so rotations
    wrap exactly; a few generalized diagonals are zeroed so the
    skip-zero-diagonal fast path is exercised under the bit-identity
    microscope."""
    rng = np.random.default_rng(base_seed)
    matrix = rng.uniform(-1.0, 1.0, (dim, dim)) / np.sqrt(dim)
    i = np.arange(dim)
    for d in (3, dim // 2, dim - 1):
        matrix[i, (i + d) % dim] = 0.0
    return matrix


def generate_program(
    seed: int,
    length: int = 6,
    k: int = 3,
    scale_bits: int = 28,
    prime_bits: int = 30,
) -> List[str]:
    """A feasibility-checked random op sequence for a depth-``k`` chain.

    Tracks the (level, scale) budget the way a CKKS compiler would: an
    op is only emitted when the resulting scale still fits under the
    remaining modulus with headroom (no wrap-around) and stays above a
    precision floor (so the final decode remains meaningful).
    """
    rng = random.Random(seed)
    ops = [op for op, w in _OP_WEIGHTS for _ in range(w)]
    program: List[str] = []
    level = k
    s = float(scale_bits)
    headroom = 12  # bits between the scaled message and q_level
    floor = 22  # precision floor for the final decode
    while len(program) < length:
        op = rng.choice(ops)
        if op == "mul_relin":
            # operand is encoded at the default scale; the pair
            # multiplies then rescales, costing one level
            if level < 2 or s + scale_bits + headroom > prime_bits * level:
                continue
            if s + scale_bits - prime_bits < floor:
                continue
            program += ["mul_relin", "rescale"]
            s += scale_bits - prime_bits
            level -= 1
        elif op == "matvec":
            # one C-P multiply level plus an internal rescale
            if level < 2 or s + scale_bits + headroom > prime_bits * level:
                continue
            if s + scale_bits - prime_bits < floor:
                continue
            program.append("matvec")
            s += scale_bits - prime_bits
            level -= 1
        elif op == "rescale":
            if level < 2 or s - prime_bits < floor:
                continue
            program.append("rescale")
            s -= prime_bits
            level -= 1
        elif op == "mul_plain":
            if s + scale_bits + headroom > prime_bits * level:
                continue
            program.append("mul_plain")
            s += scale_bits
        else:
            program.append(op)
    return program[:length]


def _operand_values(rng: random.Random, slots: int) -> List[complex]:
    """Bounded random slot values (|v| <= 1 keeps noise growth tame)."""
    return [
        complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(slots)
    ]


class _ModelState:
    """Plaintext-side mirror of the homomorphic program."""

    def __init__(self, values: np.ndarray):
        self.values = values.copy()

    def apply(self, op: str, operand: Optional[np.ndarray]) -> None:
        if op == "add":
            self.values = self.values + operand
        elif op == "sub":
            self.values = self.values - operand
        elif op in ("mul_relin", "mul_plain"):
            self.values = self.values * operand
        elif op in ("rotate", "rotate_hoisted"):
            self.values = np.roll(self.values, -ROTATE_STEP)
        elif op == "matvec":
            # dim == slot_count, so the encrypted diagonal method is an
            # exact cyclic matvec over the slot vector
            self.values = operand @ self.values
        elif op == "conjugate":
            self.values = np.conj(self.values)
        elif op == "negate":
            self.values = -self.values
        elif op == "rescale":
            pass  # scale bookkeeping only; slot values are unchanged
        else:
            raise ValueError(f"unknown op {op!r}")


def run_program(
    program: List[str],
    backend_name: str,
    batched: bool,
    *,
    n: int = 64,
    k: int = 3,
    batch_count: int = 3,
    base_seed: int = 1000,
    rematerialize: bool = False,
) -> Dict:
    """Execute a program in one (backend, mode) combination.

    Returns per-step canonical residue rows for every batch element,
    the final decoded slot vectors, and the plaintext-model expectation.

    With ``rematerialize=True`` every ciphertext is torn down to
    canonical Python lists and rebuilt after each step, forcing the
    list-interchange path; results must stay bit-identical to the
    backend-resident run (the residency property test).
    """
    value_rng = random.Random(base_seed)  # same value stream in every run
    with use_backend(backend_name):
        ctx = CkksContext(toy_parameters(n=n, k=k, prime_bits=30))
        keygen = KeyGenerator(ctx, seed=base_seed + 1)
        encryptor = Encryptor(ctx, keygen.public_key(), seed=base_seed + 2)
        encoder = CkksEncoder(ctx)
        decryptor = Decryptor(ctx, keygen.secret_key)
        relin_key = keygen.relin_key()
        slots = ctx.params.slot_count
        rotate_steps = [ROTATE_STEP]
        if "matvec" in program:
            rotate_steps += list(range(1, slots))
        galois_keys = keygen.galois_keys(rotate_steps, conjugation=True)
        matvec_matrix = (
            _matvec_matrix(slots, base_seed) if "matvec" in program else None
        )
        linear = LinearEvaluator(ctx)

        init_values = [
            np.array(_operand_values(value_rng, slots)) for _ in range(batch_count)
        ]
        models = [_ModelState(v) for v in init_values]
        init_pts = [encoder.encode(list(v)) for v in init_values]

        steps: List[List] = []
        if batched:
            bev = BatchEvaluator(ctx)
            state = bev.encrypt(encryptor, init_pts)
        else:
            ev = Evaluator(ctx)
            state = [encryptor.encrypt(pt) for pt in init_pts]

        def snapshot():
            cts = state.split() if batched else state
            steps.append([[p.residues for p in ct.polys] for ct in cts])

        snapshot()
        for op in program:
            scale = state.scale if batched else state[0].scale
            level = state.level_count if batched else state[0].level_count
            operand_vals = None
            if op in ("add", "sub", "mul_relin"):
                # one fresh encrypted operand per element, step-major so
                # both modes consume the sampler identically
                operand_vals = [
                    np.array(_operand_values(value_rng, slots))
                    for _ in range(batch_count)
                ]
                enc_scale = scale if op in ("add", "sub") else None
                operand_cts = [
                    encryptor.encrypt(
                        encoder.encode(
                            list(v), scale=enc_scale, level_count=level
                        )
                    )
                    for v in operand_vals
                ]
            elif op == "mul_plain":
                operand_vals = [
                    np.array(_operand_values(value_rng, slots))
                ] * batch_count
                shared_pt = encoder.encode(
                    list(operand_vals[0]), level_count=level
                )
            elif op == "matvec":
                operand_vals = [matvec_matrix] * batch_count

            if batched:
                if op == "add":
                    state = bev.add(state, _join(operand_cts))
                elif op == "sub":
                    state = bev.sub(state, _join(operand_cts))
                elif op == "mul_relin":
                    state = bev.relinearize(
                        bev.multiply(state, _join(operand_cts)), relin_key
                    )
                elif op == "mul_plain":
                    state = bev.multiply_plain(state, shared_pt)
                elif op == "rotate":
                    state = bev.rotate(state, ROTATE_STEP, galois_keys)
                elif op == "rotate_hoisted":
                    # the batched rotation shares the scalar hoisted
                    # dataflow, so this cross-checks hoisted-vs-batched
                    state = bev.rotate(state, ROTATE_STEP, galois_keys)
                elif op == "matvec":
                    state = _join(
                        [
                            linear.matvec_diagonal(
                                matvec_matrix, c, galois_keys
                            )
                            for c in state.split()
                        ]
                    )
                elif op == "conjugate":
                    state = bev.conjugate(state, galois_keys)
                elif op == "negate":
                    state = bev.negate(state)
                elif op == "rescale":
                    state = bev.rescale(state)
            else:
                if op == "add":
                    state = [ev.add(c, o) for c, o in zip(state, operand_cts)]
                elif op == "sub":
                    state = [ev.sub(c, o) for c, o in zip(state, operand_cts)]
                elif op == "mul_relin":
                    state = [
                        ev.relinearize(ev.multiply(c, o), relin_key)
                        for c, o in zip(state, operand_cts)
                    ]
                elif op == "mul_plain":
                    state = [ev.multiply_plain(c, shared_pt) for c in state]
                elif op == "rotate":
                    state = [
                        ev.rotate(c, ROTATE_STEP, galois_keys) for c in state
                    ]
                elif op == "rotate_hoisted":
                    state = [
                        ev.rotate_hoisted(c, [ROTATE_STEP], galois_keys)[0]
                        for c in state
                    ]
                elif op == "matvec":
                    state = [
                        linear.matvec_diagonal(matvec_matrix, c, galois_keys)
                        for c in state
                    ]
                elif op == "conjugate":
                    state = [ev.conjugate(c, galois_keys) for c in state]
                elif op == "negate":
                    state = [ev.negate(c) for c in state]
                elif op == "rescale":
                    state = [ev.rescale(c) for c in state]

            if rematerialize:
                if batched:
                    state = _join([_rematerialized(c) for c in state.split()])
                else:
                    state = [_rematerialized(c) for c in state]

            for b, model in enumerate(models):
                model.apply(op, operand_vals[b] if operand_vals else None)
            snapshot()

        if batched:
            plains = bev.decrypt(decryptor, state)
        else:
            plains = [decryptor.decrypt(c) for c in state]
        decoded = [encoder.decode(pt) for pt in plains]
        return {
            "steps": steps,
            "decoded": decoded,
            "expected": [m.values for m in models],
        }


def run_program_planned(
    program: List[str],
    backend_name: str,
    *,
    n: int = 64,
    k: int = 3,
    batch_count: int = 3,
    base_seed: int = 1000,
    optimize: bool = True,
) -> Dict:
    """Execute a program through the workload planner (plan mode).

    The whole program is lowered into one :class:`repro.plan.PlanGraph`
    -- ``batch_count`` independent chains, one per batch element -- and
    executed by :class:`repro.plan.PlanExecutor` (optimized: sweep
    fusion + batch packing; naive: per-node scalar).  Sampler discipline
    matches :func:`run_program` exactly: operands are encrypted in
    step-major order *during graph construction*, so the plan run sees
    byte-identical ciphertexts and its per-step node results must be
    bit-identical to the scalar trace.

    Generated programs carry their own rescale schedule, so
    ``place_rescales`` must be a structural no-op on them -- asserted
    here -- and the graph goes to the executor checker-validated but
    otherwise untouched.
    """
    from repro.plan import PlanExecutor, PlanGraph, check_plan, place_rescales
    from repro.plan.lower import matvec_graph

    value_rng = random.Random(base_seed)
    with use_backend(backend_name):
        ctx = CkksContext(toy_parameters(n=n, k=k, prime_bits=30))
        keygen = KeyGenerator(ctx, seed=base_seed + 1)
        encryptor = Encryptor(ctx, keygen.public_key(), seed=base_seed + 2)
        encoder = CkksEncoder(ctx)
        decryptor = Decryptor(ctx, keygen.secret_key)
        relin_key = keygen.relin_key()
        slots = ctx.params.slot_count
        rotate_steps = [ROTATE_STEP]
        if "matvec" in program:
            rotate_steps += list(range(1, slots))
        galois_keys = keygen.galois_keys(rotate_steps, conjugation=True)
        matvec_matrix = (
            _matvec_matrix(slots, base_seed) if "matvec" in program else None
        )
        delta = ctx.params.scale

        init_values = [
            np.array(_operand_values(value_rng, slots)) for _ in range(batch_count)
        ]
        models = [_ModelState(v) for v in init_values]
        inputs = {
            f"x{b}": encryptor.encrypt(encoder.encode(list(v)))
            for b, v in enumerate(init_values)
        }

        graph = PlanGraph()
        chains = [graph.input(f"x{b}") for b in range(batch_count)]
        # mirror of the evaluator's scale/level arithmetic, used to
        # encode add/sub operands at the chain's exact runtime scale
        level, scale = k, float(delta)
        #: per-step node ids, for the step-wise bit-identity snapshot
        step_nodes: List[List[int]] = []

        def last_prime() -> int:
            return ctx.basis_at_level(level).moduli[-1].value

        for idx, op in enumerate(program):
            operand_vals = None
            if op in ("add", "sub", "mul_relin"):
                operand_vals = [
                    np.array(_operand_values(value_rng, slots))
                    for _ in range(batch_count)
                ]
                enc_scale = scale if op in ("add", "sub") else None
                for b, v in enumerate(operand_vals):
                    name = f"op{idx}_b{b}"
                    inputs[name] = encryptor.encrypt(
                        encoder.encode(list(v), scale=enc_scale, level_count=level)
                    )
                    operand = graph.input(name, level_count=level, scale=enc_scale)
                    if op == "add":
                        chains[b] = graph.add(chains[b], operand)
                    elif op == "sub":
                        chains[b] = graph.sub(chains[b], operand)
                    else:
                        chains[b] = graph.mul_relin(chains[b], operand)
                if op == "mul_relin":
                    scale = scale * delta
            elif op == "mul_plain":
                operand_vals = [
                    np.array(_operand_values(value_rng, slots))
                ] * batch_count
                shared = graph.const(list(operand_vals[0]))
                chains = [graph.mul_plain(c, shared) for c in chains]
                scale = scale * delta
            elif op == "matvec":
                operand_vals = [matvec_matrix] * batch_count
                new_chains = []
                for c in chains:
                    _, out_node = matvec_graph(
                        matvec_matrix, graph=graph, input_node=c
                    )
                    new_chains.append(out_node)
                chains = new_chains
                scale = (scale * delta) / last_prime()
                level -= 1
            elif op in ("rotate", "rotate_hoisted"):
                chains = [graph.rotate(c, ROTATE_STEP) for c in chains]
            elif op == "conjugate":
                chains = [graph.conjugate(c) for c in chains]
            elif op == "negate":
                chains = [graph.negate(c) for c in chains]
            elif op == "rescale":
                chains = [graph.rescale(c) for c in chains]
                scale = scale / last_prime()
                level -= 1
            else:
                raise ValueError(f"unknown op {op!r}")
            for b, model in enumerate(models):
                model.apply(op, operand_vals[b] if operand_vals else None)
            step_nodes.append(list(chains))
        for b, c in enumerate(chains):
            graph.output(c, f"y{b}")

        # generated programs schedule their own rescales: placement must
        # not rewrite them
        placed = place_rescales(graph, ctx, rescale_outputs=False)
        assert len(placed) == len(graph), (
            f"place_rescales rewrote a pre-scheduled program graph "
            f"({len(graph)} -> {len(placed)} nodes) for {program}"
        )
        check_plan(graph, ctx)

        executor = PlanExecutor(
            ctx, relin_key=relin_key, galois_keys=galois_keys
        )
        run = executor.run(graph, inputs, optimize=optimize)

        steps = [
            [
                [p.residues for p in inputs[f"x{b}"].polys]
                for b in range(batch_count)
            ]
        ]
        for nodes in step_nodes:
            steps.append(
                [
                    [p.residues for p in run.results[nid].polys]
                    for nid in nodes
                ]
            )
        decoded = [
            encoder.decode(decryptor.decrypt(run.outputs[f"y{b}"]))
            for b in range(batch_count)
        ]
        return {
            "steps": steps,
            "decoded": decoded,
            "expected": [m.values for m in models],
            "run": run,
        }


def _join(cts):
    from repro.ckks.batch import CiphertextBatch

    return CiphertextBatch.from_ciphertexts(cts)


def _rematerialized(ct):
    """Rebuild a ciphertext from canonical Python-list rows (the
    materialized `.residues` snapshot), discarding any backend-native
    residency."""
    from repro.ckks.poly import Ciphertext, RnsPolynomial

    return Ciphertext(
        [
            RnsPolynomial(p.n, p.moduli, p.residues, p.is_ntt)
            for p in ct.polys
        ],
        ct.scale,
    )


def assert_differential(
    program: List[str],
    *,
    n: int = 64,
    k: int = 3,
    batch_count: int = 3,
    base_seed: int = 1000,
    atol: float = 0.05,
) -> None:
    """Run all four (backend, mode) combinations and assert the contract."""
    runs = {
        (backend, mode): run_program(
            program,
            backend,
            mode == "batched",
            n=n,
            k=k,
            batch_count=batch_count,
            base_seed=base_seed,
        )
        for backend in ("reference", "numpy")
        for mode in ("scalar", "batched")
    }
    baseline_key = ("reference", "scalar")
    baseline = runs[baseline_key]
    for key, result in runs.items():
        if key == baseline_key:
            continue
        for step, (got, want) in enumerate(
            zip(result["steps"], baseline["steps"])
        ):
            assert got == want, (
                f"{key} diverged from {baseline_key} at step {step} "
                f"(op {'init' if step == 0 else program[step - 1]!r}) "
                f"of program {program}"
            )
    for b, (got, want) in enumerate(
        zip(baseline["decoded"], baseline["expected"])
    ):
        np.testing.assert_allclose(
            got,
            want,
            atol=atol,
            err_msg=f"decode of batch element {b} drifted beyond CKKS "
            f"precision for program {program}",
        )


def assert_plan_differential(
    program: List[str],
    *,
    n: int = 64,
    k: int = 3,
    batch_count: int = 3,
    base_seed: int = 1000,
    atol: float = 0.05,
) -> None:
    """Planned execution vs the scalar trace, on both backends.

    The contract of the planner satellite: optimized plan execution
    (sweep fusion + batch packing) and naive plan execution are
    bit-identical to the sequential scalar run after *every* program
    step, on reference and numpy alike -- and the decode still matches
    the plaintext model.
    """
    kwargs = dict(n=n, k=k, batch_count=batch_count, base_seed=base_seed)
    baseline = run_program(program, "reference", False, **kwargs)
    runs = {
        (backend, "plan-opt" if optimize else "plan-naive"): run_program_planned(
            program, backend, optimize=optimize, **kwargs
        )
        for backend in ("reference", "numpy")
        for optimize in (True, False)
    }
    for key, result in runs.items():
        for step, (got, want) in enumerate(
            zip(result["steps"], baseline["steps"])
        ):
            assert got == want, (
                f"{key} diverged from the scalar trace at step {step} "
                f"(op {'init' if step == 0 else program[step - 1]!r}) "
                f"of program {program}"
            )
    for b, (got, want) in enumerate(
        zip(runs[("reference", "plan-opt")]["decoded"], baseline["expected"])
    ):
        np.testing.assert_allclose(
            got,
            want,
            atol=atol,
            err_msg=f"planned decode of batch element {b} drifted beyond "
            f"CKKS precision for program {program}",
        )
