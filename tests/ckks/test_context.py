"""Unit tests for parameters, context precomputation, and Galois maps."""

import pytest

from repro.ckks.context import (
    CkksContext,
    CkksParameters,
    PAPER_PARAMETER_SETS,
    SET_A,
    SET_B,
    SET_C,
    toy_parameters,
)
from repro.ckks.poly import RnsPolynomial


class TestParameters:
    def test_table2_set_a(self):
        assert SET_A.n == 4096
        assert SET_A.k == 2
        assert SET_A.total_modulus_bits == 109

    def test_table2_set_b(self):
        assert SET_B.n == 8192
        assert SET_B.k == 4
        assert SET_B.total_modulus_bits == 218

    def test_table2_set_c(self):
        assert SET_C.n == 16384
        assert SET_C.k == 8
        assert SET_C.total_modulus_bits == 438

    def test_all_paper_sets_word_safe(self):
        for ps in PAPER_PARAMETER_SETS.values():
            assert all(b <= 52 for b in ps.modulus_bits)

    def test_security_floor_enforced(self):
        with pytest.raises(ValueError):
            CkksParameters(n=64, modulus_bits=(30, 30), scale=2.0**20)

    def test_allow_insecure_bypasses_floor(self):
        p = toy_parameters(n=64)
        assert p.n == 64

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            CkksParameters(n=100, modulus_bits=(30, 30), scale=2.0**20, allow_insecure=True)

    def test_rejects_single_modulus(self):
        with pytest.raises(ValueError):
            CkksParameters(n=64, modulus_bits=(30,), scale=2.0**20, allow_insecure=True)

    def test_rejects_oversized_modulus_bits(self):
        with pytest.raises(ValueError):
            CkksParameters(n=64, modulus_bits=(53, 53), scale=2.0**20, allow_insecure=True)

    def test_slot_count(self):
        assert SET_A.slot_count == 2048


class TestContext:
    def test_basis_shapes(self, toy_context):
        assert len(toy_context.data_basis) == 3
        assert len(toy_context.key_basis) == 4
        assert toy_context.special_modulus.value == toy_context.key_basis.moduli[-1].value

    def test_basis_at_level(self, toy_context):
        b2 = toy_context.basis_at_level(2)
        assert len(b2) == 2
        assert [m.value for m in b2] == [m.value for m in toy_context.data_basis.moduli[:2]]

    def test_basis_at_level_bounds(self, toy_context):
        with pytest.raises(ValueError):
            toy_context.basis_at_level(0)
        with pytest.raises(ValueError):
            toy_context.basis_at_level(4)

    def test_key_basis_at_level_appends_special(self, toy_context):
        kb = toy_context.key_basis_at_level(2)
        assert len(kb) == 3
        assert kb.moduli[-1].value == toy_context.special_modulus.value

    def test_ntt_roundtrip(self, toy_context):
        p = RnsPolynomial.from_int_coeffs(
            list(range(toy_context.n)), toy_context.data_basis.moduli
        )
        back = toy_context.from_ntt(toy_context.to_ntt(p))
        assert back == p

    def test_double_transform_rejected(self, toy_context):
        p = RnsPolynomial.from_int_coeffs(
            [1] * toy_context.n, toy_context.data_basis.moduli
        )
        ntt = toy_context.to_ntt(p)
        with pytest.raises(ValueError):
            toy_context.to_ntt(ntt)
        with pytest.raises(ValueError):
            toy_context.from_ntt(p)


class TestGalois:
    def test_element_for_step(self, toy_context):
        n = toy_context.n
        assert toy_context.galois_element_for_step(0) == 1
        assert toy_context.galois_element_for_step(1) == 3
        assert toy_context.galois_element_for_step(2) == 9 % (2 * n)

    def test_negative_step_wraps(self, toy_context):
        n = toy_context.n
        neg = toy_context.galois_element_for_step(-1)
        pos = toy_context.galois_element_for_step(n // 2 - 1)
        assert neg == pos

    def test_conjugation_element(self, toy_context):
        assert toy_context.conjugation_element == 2 * toy_context.n - 1

    def test_apply_galois_identity(self, toy_context):
        p = RnsPolynomial.from_int_coeffs(
            list(range(toy_context.n)), toy_context.data_basis.moduli
        )
        assert toy_context.apply_galois(p, 1) == p

    def test_apply_galois_is_ring_automorphism(self, toy_context):
        """sigma(a * b) == sigma(a) * sigma(b) for the ring product."""
        ctx = toy_context
        a = RnsPolynomial.from_int_coeffs(
            [i % 7 for i in range(ctx.n)], ctx.data_basis.moduli
        )
        b = RnsPolynomial.from_int_coeffs(
            [(3 * i + 1) % 5 for i in range(ctx.n)], ctx.data_basis.moduli
        )
        g = ctx.galois_element_for_step(1)
        prod = ctx.from_ntt(ctx.to_ntt(a).dyadic_multiply(ctx.to_ntt(b)))
        lhs = ctx.apply_galois(prod, g)
        rhs = ctx.from_ntt(
            ctx.to_ntt(ctx.apply_galois(a, g)).dyadic_multiply(
                ctx.to_ntt(ctx.apply_galois(b, g))
            )
        )
        assert lhs == rhs

    def test_apply_galois_composition(self, toy_context):
        ctx = toy_context
        p = RnsPolynomial.from_int_coeffs(
            [i * i % 11 for i in range(ctx.n)], ctx.data_basis.moduli
        )
        g1 = ctx.galois_element_for_step(1)
        g2 = ctx.galois_element_for_step(2)
        once_twice = ctx.apply_galois(ctx.apply_galois(p, g1), g1)
        direct = ctx.apply_galois(p, g2)
        assert once_twice == direct

    def test_apply_galois_rejects_ntt_form(self, toy_context):
        p = toy_context.to_ntt(
            RnsPolynomial.from_int_coeffs([1] * toy_context.n, toy_context.data_basis.moduli)
        )
        with pytest.raises(ValueError):
            toy_context.apply_galois(p, 3)

    def test_apply_galois_rejects_even_element(self, toy_context):
        p = RnsPolynomial.from_int_coeffs([1] * toy_context.n, toy_context.data_basis.moduli)
        with pytest.raises(ValueError):
            toy_context.apply_galois(p, 4)
