"""Unit tests for the canonical-embedding encoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks.encoder import CkksEncoder


class TestRoundTrip:
    def test_real_vector(self, toy_context, encoder):
        vals = np.linspace(-2, 2, encoder.slot_count)
        pt = encoder.encode(vals)
        out = encoder.decode(pt)
        assert np.allclose(out.real, vals, atol=1e-4)
        assert np.allclose(out.imag, 0, atol=1e-4)

    def test_complex_vector(self, encoder):
        vals = np.array([0.5 + 0.25j, -1.5 - 2.0j, 3.0, 0.0])
        out = encoder.decode(encoder.encode(vals))
        assert np.allclose(out[:4], vals, atol=1e-4)
        assert np.allclose(out[4:], 0, atol=1e-4)

    def test_scalar_broadcast(self, encoder):
        out = encoder.decode(encoder.encode(1.5))
        assert np.allclose(out, 1.5, atol=1e-4)

    def test_zero(self, encoder):
        out = encoder.decode(encoder.encode(0.0))
        assert np.allclose(out, 0, atol=1e-6)

    def test_coefficient_form_roundtrip(self, encoder):
        vals = np.array([1.0, -1.0])
        pt = encoder.encode(vals, to_ntt=False)
        assert not pt.poly.is_ntt
        out = encoder.decode(pt)
        assert np.allclose(out[:2], vals, atol=1e-4)

    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, encoder, values):
        vals = np.array(values)
        out = encoder.decode(encoder.encode(vals)).real[: len(values)]
        assert np.allclose(out, vals, atol=1e-3)


class TestShapes:
    def test_slot_count_is_half_n(self, toy_context, encoder):
        assert encoder.slot_count == toy_context.n // 2

    def test_too_many_values_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode([1.0] * (encoder.slot_count + 1))

    def test_short_vector_zero_padded(self, encoder):
        out = encoder.decode(encoder.encode([2.0]))
        assert np.isclose(out[0].real, 2.0, atol=1e-4)
        assert np.allclose(out[1:], 0, atol=1e-4)

    def test_level_count_parameter(self, toy_context, encoder):
        pt = encoder.encode([1.0], level_count=2)
        assert pt.level_count == 2

    def test_scale_recorded(self, encoder):
        pt = encoder.encode([1.0], scale=2.0**20)
        assert pt.scale == 2.0**20


class TestHomomorphicStructure:
    """Encoding is approximately additive and slot-wise multiplicative."""

    def test_additivity(self, toy_context, encoder):
        a = np.array([1.0, 2.0, -0.5])
        b = np.array([0.25, -1.0, 4.0])
        pa, pb = encoder.encode(a), encoder.encode(b)
        summed = pa.poly.add(pb.poly)
        from repro.ckks.poly import Plaintext

        out = encoder.decode(Plaintext(summed, pa.scale))
        assert np.allclose(out[:3].real, a + b, atol=1e-3)

    def test_slotwise_product_via_ring_product(self, toy_context, encoder):
        a = np.array([1.5, -2.0, 0.5])
        b = np.array([2.0, 0.5, -3.0])
        pa, pb = encoder.encode(a), encoder.encode(b)
        prod = pa.poly.dyadic_multiply(pb.poly)
        from repro.ckks.poly import Plaintext

        out = encoder.decode(Plaintext(prod, pa.scale * pb.scale))
        assert np.allclose(out[:3].real, a * b, atol=1e-2)

    def test_conjugate_symmetry_gives_real_coeffs(self, toy_context, encoder):
        """Real inputs must encode to (near-)real polynomial coefficients
        before rounding -- the embedding preserves conjugate symmetry."""
        vals = np.array([3.0, -1.0, 0.25])
        raw = encoder._values_to_coeffs(
            np.concatenate([vals, np.zeros(encoder.slot_count - 3)])
        )
        assert np.all(np.isfinite(raw))
        # reconstruct slots and compare
        back = encoder._coeffs_to_values(raw)
        assert np.allclose(back[:3], vals, atol=1e-9)
