"""Shared fixtures: small (insecure) CKKS instances sized for fast tests.

Paper-scale parameters (n >= 4096) are exercised by a handful of tests
marked ``slow`` and by the benchmark harness; everything else runs on
toy rings where a full NTT takes microseconds.
"""

from __future__ import annotations

import pytest

from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.decryptor import Decryptor
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator


@pytest.fixture(scope="session")
def toy_context() -> CkksContext:
    """n=64, three 30-bit data primes + special, scale 2^28."""
    return CkksContext(toy_parameters(n=64, k=3, prime_bits=30, scale=2.0**28))


@pytest.fixture(scope="session")
def keygen(toy_context) -> KeyGenerator:
    return KeyGenerator(toy_context, seed=12345)


@pytest.fixture(scope="session")
def encoder(toy_context) -> CkksEncoder:
    return CkksEncoder(toy_context)


@pytest.fixture(scope="session")
def evaluator(toy_context) -> Evaluator:
    return Evaluator(toy_context)


@pytest.fixture(scope="session")
def encryptor(toy_context, keygen) -> Encryptor:
    return Encryptor(toy_context, keygen.public_key(), seed=777)


@pytest.fixture(scope="session")
def sym_encryptor(toy_context, keygen) -> Encryptor:
    return Encryptor(toy_context, keygen.secret_key, seed=778)


@pytest.fixture(scope="session")
def decryptor(toy_context, keygen) -> Decryptor:
    return Decryptor(toy_context, keygen.secret_key)


@pytest.fixture(scope="session")
def relin_key(keygen):
    return keygen.relin_key()


@pytest.fixture(scope="session")
def galois_keys(keygen):
    return keygen.galois_keys([1, 2, 3, 5], conjugation=True)
