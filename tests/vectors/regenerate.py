"""Regenerate the golden test vectors under ``tests/vectors/``.

Two fixture families are frozen here:

* ``ntt_n64.json`` -- full known-answer rows for the negacyclic
  NTT/INTT at ``n = 64`` in both numpy prime regimes (30-bit native
  multiply, 50-bit float-assisted Barrett), plus a dyadic product row.
* ``trace_n1024.json`` -- SHA-256 digests of every stage of one
  deterministic encrypt -> multiply -> relinearize -> rescale -> decrypt
  trace at ``n = 1024`` (Set-A-shaped, ``k = 2``), with the head of the
  decoded slot vector stored verbatim.

The point of freezing (rather than comparing against the reference
backend at test time) is that a regression that hits *both* backends --
a twiddle-table change, an encoder tweak, a sampler reordering -- is
still caught, and the known-answer tests keep working on hosts where
only one backend is importable.

Regenerate (only when an intentional change invalidates the vectors)::

    PYTHONPATH=src python tests/vectors/regenerate.py

Vectors are always produced by the **reference** backend -- the ground
truth -- regardless of the environment's backend selection.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import random

VECTORS_DIR = pathlib.Path(__file__).resolve().parent

NTT_N = 64
NTT_PRIME_BITS = (30, 50)

TRACE_PARAMS = dict(n=1024, k=2, prime_bits=30, scale=2.0**28)
TRACE_KEYGEN_SEED = 2024
TRACE_ENCRYPTOR_SEED = 2025
TRACE_DECODE_ATOL = 1e-3
TRACE_HEAD_SLOTS = 8


def rows_digest(rows) -> str:
    """Canonical SHA-256 of a nested list-of-ints structure."""
    blob = json.dumps(rows, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def compute_ntt_vectors() -> dict:
    """Known-answer NTT/INTT/dyadic rows, computed on the active backend."""
    from repro.ckks.backend import get_backend
    from repro.ckks.ntt import NTTTables
    from repro.ckks.primes import make_modulus_chain

    be = get_backend()
    out = {"n": NTT_N, "cases": []}
    for bits in NTT_PRIME_BITS:
        modulus = make_modulus_chain(NTT_N, [bits], 54)[0]
        tables = NTTTables(NTT_N, modulus)
        rng = random.Random(bits)
        row = [rng.randrange(modulus.value) for _ in range(NTT_N)]
        other = [rng.randrange(modulus.value) for _ in range(NTT_N)]
        forward = be.ntt_forward(tables, row)
        out["cases"].append(
            {
                "prime_bits": bits,
                "modulus": modulus.value,
                "input": row,
                "forward": forward,
                "inverse_of_forward": be.ntt_inverse(tables, forward),
                "dyadic_other": other,
                "dyadic_product": be.dyadic_mul(modulus, row, other),
            }
        )
    return out


def trace_values(slot_count: int):
    """The deterministic slot vector encrypted by the golden trace."""
    return [
        complex((i % 7) / 7.0, (i % 11) / 11.0 - 0.5) for i in range(slot_count)
    ]


def compute_trace() -> dict:
    """One full pipeline at n = 1024, digested stage by stage."""
    from repro.ckks.context import CkksContext, toy_parameters
    from repro.ckks.decryptor import Decryptor
    from repro.ckks.encoder import CkksEncoder
    from repro.ckks.encryptor import Encryptor
    from repro.ckks.evaluator import Evaluator
    from repro.ckks.keys import KeyGenerator

    ctx = CkksContext(toy_parameters(**TRACE_PARAMS))
    keygen = KeyGenerator(ctx, seed=TRACE_KEYGEN_SEED)
    encryptor = Encryptor(ctx, keygen.public_key(), seed=TRACE_ENCRYPTOR_SEED)
    encoder = CkksEncoder(ctx)
    evaluator = Evaluator(ctx)
    decryptor = Decryptor(ctx, keygen.secret_key)

    pt = encoder.encode(trace_values(ctx.params.slot_count))
    ct = encryptor.encrypt(pt)
    prod = evaluator.multiply(ct, ct)
    relin = evaluator.relinearize(prod, keygen.relin_key())
    rescaled = evaluator.rescale(relin)
    plain = decryptor.decrypt(rescaled)
    decoded = encoder.decode(plain)

    def ct_rows(c):
        return [p.residues for p in c.polys]

    return {
        "params": dict(TRACE_PARAMS),
        "keygen_seed": TRACE_KEYGEN_SEED,
        "encryptor_seed": TRACE_ENCRYPTOR_SEED,
        "digests": {
            "plaintext": rows_digest(pt.poly.residues),
            "ciphertext": rows_digest(ct_rows(ct)),
            "product": rows_digest(ct_rows(prod)),
            "relinearized": rows_digest(ct_rows(relin)),
            "rescaled": rows_digest(ct_rows(rescaled)),
            "decrypted": rows_digest(plain.poly.residues),
        },
        "decoded_head": [
            [v.real, v.imag] for v in decoded[:TRACE_HEAD_SLOTS]
        ],
        "decode_atol": TRACE_DECODE_ATOL,
    }


def main() -> None:
    from repro.ckks.backend import use_backend

    with use_backend("reference"):
        ntt = compute_ntt_vectors()
        trace = compute_trace()
    (VECTORS_DIR / "ntt_n64.json").write_text(json.dumps(ntt, indent=1) + "\n")
    (VECTORS_DIR / "trace_n1024.json").write_text(
        json.dumps(trace, indent=1) + "\n"
    )
    print(f"wrote {VECTORS_DIR / 'ntt_n64.json'}")
    print(f"wrote {VECTORS_DIR / 'trace_n1024.json'}")


if __name__ == "__main__":
    main()
