"""Planner passes: the loud scale/level checker, rescale placement, and
sweep detection.

The checker tests pin the rejection *messages*, not just the exception
type: the satellite contract is that unplaceable graphs fail loudly and
name the violated rule, so a silent behavior change here is a bug.
"""

import pytest

from repro.ckks.context import CkksContext, toy_parameters
from repro.plan.graph import PlanGraph
from repro.plan.passes import (
    PlanValidationError,
    check_plan,
    compile_plan,
    fuse_rotation_sweeps,
    place_rescales,
)

DELTA = 2.0 ** 28


@pytest.fixture(scope="module")
def ctx3():
    return CkksContext(toy_parameters(n=64, k=3, prime_bits=30))


@pytest.fixture(scope="module")
def ctx4():
    return CkksContext(toy_parameters(n=64, k=4, prime_bits=30))


class TestChecker:
    def test_types_a_simple_chain(self, ctx4):
        g = PlanGraph()
        x = g.input("x")
        s = g.square(x)
        r = g.rescale(s)
        types = check_plan(g, ctx4)
        assert types[x] == (4, DELTA)
        assert types[s] == (4, DELTA * DELTA)
        level, scale = types[r]
        assert level == 3
        prime = float(ctx4.basis_at_level(4).moduli[-1].value)
        assert scale == DELTA * DELTA / prime

    def test_rescale_at_last_level_rejected(self, ctx3):
        g = PlanGraph()
        x = g.input("x", level_count=1, scale=2.0 ** 10)
        g.rescale(x)
        with pytest.raises(
            PlanValidationError, match="cannot rescale at the last level"
        ):
            check_plan(g, ctx3)

    def test_headroom_overflow_rejected(self, ctx3):
        # two squares without a rescale: 2^112 against a 90-bit budget
        g = PlanGraph()
        x = g.input("x")
        g.square(g.square(x))
        with pytest.raises(PlanValidationError, match="headroom bits"):
            check_plan(g, ctx3)

    def test_level_mismatch_add_rejected(self, ctx4):
        g = PlanGraph()
        a = g.input("a")
        b = g.input("b", level_count=3)
        g.add(a, b)
        with pytest.raises(PlanValidationError, match="level mismatch"):
            check_plan(g, ctx4)

    def test_scale_mismatch_add_rejected(self, ctx4):
        g = PlanGraph()
        a = g.input("a")
        b = g.input("b", scale=DELTA * 1.5)
        g.add(a, b)
        with pytest.raises(PlanValidationError, match="scale mismatch"):
            check_plan(g, ctx4)

    def test_input_level_outside_chain_rejected(self, ctx3):
        g = PlanGraph()
        g.input("x", level_count=7)
        with pytest.raises(PlanValidationError, match="outside"):
            check_plan(g, ctx3)

    def test_rescale_below_unit_scale_rejected(self, ctx4):
        # rescaling a fresh delta-scale ciphertext: 2^28 / 2^30 < 1
        g = PlanGraph()
        x = g.input("x")
        g.rescale(x)
        with pytest.raises(PlanValidationError, match="not a fresh product"):
            check_plan(g, ctx4)


class TestPlacement:
    def test_lazy_rescale_inserted_before_second_multiply(self, ctx4):
        g = PlanGraph()
        x = g.input("x")
        g.output(g.square(g.square(x)), "y")
        placed = place_rescales(g, ctx4, rescale_outputs=False)
        # exactly one rescale, in front of the second square
        assert placed.op_counts()["rescale"] == 1
        types = check_plan(placed, ctx4)
        out_level, _ = types[placed.outputs["y"]]
        assert out_level == 3

    def test_prescheduled_graph_passes_through_unchanged(self, ctx4):
        g = PlanGraph()
        x = g.input("x")
        p = g.mul_plain(g.rescale(g.square(x)), g.const(0.5))
        g.output(p, "y")
        placed = place_rescales(g, ctx4, rescale_outputs=False)
        assert len(placed) == len(g)
        assert placed.op_counts() == g.op_counts()

    def test_output_rescale_placed_when_requested(self, ctx4):
        g = PlanGraph()
        x = g.input("x")
        g.output(g.square(x), "y")
        lazy = place_rescales(g, ctx4, rescale_outputs=False)
        eager = place_rescales(g, ctx4, rescale_outputs=True)
        assert lazy.op_counts().get("rescale", 0) == 0
        assert eager.op_counts()["rescale"] == 1
        level, scale = check_plan(eager, ctx4)[eager.outputs["y"]]
        assert level == 3 and scale < DELTA * DELTA

    def test_level_drop_aligns_mixed_level_add(self, ctx4):
        # the checker rejects this graph; placement repairs it with a
        # scale-preserving unit-multiply chain on the higher operand
        g = PlanGraph()
        a = g.input("a")
        b = g.input("b", level_count=3)
        g.output(g.add(a, b), "y")
        with pytest.raises(PlanValidationError):
            check_plan(g, ctx4)
        placed = compile_plan(g, ctx4)
        types = check_plan(placed, ctx4)
        level, scale = types[placed.outputs["y"]]
        assert level == 3
        assert scale == pytest.approx(DELTA)

    def test_unalignable_scales_rejected_loudly(self, ctx4):
        g = PlanGraph()
        a = g.input("a")
        b = g.input("b", scale=DELTA * 1.5)  # ratio 1.5 << 2^16
        g.output(g.add(a, b), "y")
        with pytest.raises(
            PlanValidationError, match="ratio below 2\\^16"
        ):
            place_rescales(g, ctx4)

    def test_too_deep_chain_rejected_at_placement(self, ctx3):
        # k=3 sustains two square->rescale rounds; the fourth square
        # finds its product-scale operand at the last level with no
        # level left to rescale into
        g = PlanGraph()
        x = g.input("x")
        g.output(g.square(g.square(g.square(g.square(x)))), "y")
        with pytest.raises(
            PlanValidationError, match="already at the last level"
        ):
            compile_plan(g, ctx3)

    def test_compile_plan_validates_its_own_output(self, ctx4):
        g = PlanGraph()
        x = g.input("x")
        g.output(g.mul_plain(g.square(x), g.const(0.25)), "y")
        placed = compile_plan(g, ctx4)
        # must not raise: placement output satisfies the checker
        types = check_plan(placed, ctx4)
        assert placed.outputs["y"] in types


class TestSweepFusion:
    def test_multi_rotation_sources_detected(self):
        g = PlanGraph()
        x = g.input("x")
        y = g.input("y")
        r1 = g.rotate(x, 1)
        r2 = g.rotate(x, 2)
        r3 = g.rotate(x, 3)
        g.rotate(y, 1)  # singleton: not a sweep
        sweeps = fuse_rotation_sweeps(g)
        assert set(sweeps) == {x}
        assert sweeps[x] == [r1, r2, r3]

    def test_no_rotations_no_sweeps(self):
        g = PlanGraph()
        x = g.input("x")
        g.square(x)
        assert fuse_rotation_sweeps(g) == {}
