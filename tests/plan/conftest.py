"""Shared fixtures for the workload-planner tests.

The planner tests want a chain one level deeper than the repo-wide toy
context (``k = 4``): a square -> rescale -> multiply chain is genuinely
infeasible at ``k = 3`` with the default ``delta = 2^28`` (the checker
tests exercise that rejection on purpose), so the execution tests run
where the plans they build actually fit.
"""

import pytest

from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.decryptor import Decryptor
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Encryptor
from repro.ckks.keys import KeyGenerator

N = 64
K = 4


@pytest.fixture(scope="session")
def plan_context():
    return CkksContext(toy_parameters(n=N, k=K, prime_bits=30))


@pytest.fixture(scope="session")
def plan_keygen(plan_context):
    return KeyGenerator(plan_context, seed=2024)


@pytest.fixture(scope="session")
def plan_relin(plan_keygen):
    return plan_keygen.relin_key()


@pytest.fixture(scope="session")
def plan_galois(plan_keygen):
    # steps 1..15 cover every matvec dimension the tests use (<= 16)
    return plan_keygen.galois_keys(range(1, 16), conjugation=True)


@pytest.fixture(scope="session")
def plan_encoder(plan_context):
    return CkksEncoder(plan_context)


@pytest.fixture(scope="session")
def plan_encryptor(plan_context, plan_keygen):
    return Encryptor(plan_context, plan_keygen.public_key(), seed=55)


@pytest.fixture(scope="session")
def plan_decryptor(plan_context, plan_keygen):
    return Decryptor(plan_context, plan_keygen.secret_key)
