"""Lowering front ends: matvec_graph and workload_graph."""

import numpy as np
import pytest

from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.serialization import serialize_ciphertext
from repro.plan.executor import PlanExecutor
from repro.plan.graph import PlanGraph
from repro.plan.lower import fresh_lane_inputs, matvec_graph, workload_graph
from repro.plan.passes import check_plan, compile_plan
from repro.system.workload import Workload, WorkloadGenerator

DIM = 8


def _packed(encoder, x):
    """Replicate x across 2*dim slots so rotations < dim wrap cleanly
    (the established matvec packing)."""
    packed = np.zeros(encoder.slot_count)
    packed[:DIM] = x
    packed[DIM : 2 * DIM] = x
    return packed


class TestMatvecGraph:
    def test_matches_numpy(
        self,
        plan_context,
        plan_encoder,
        plan_encryptor,
        plan_decryptor,
        plan_relin,
        plan_galois,
    ):
        rng = np.random.default_rng(23)
        m = rng.uniform(-1, 1, (DIM, DIM))
        x = rng.uniform(-1, 1, DIM)
        graph, _ = matvec_graph(m)
        placed = compile_plan(graph, plan_context, rescale_outputs=False)
        ct = plan_encryptor.encrypt(
            plan_encoder.encode(_packed(plan_encoder, x))
        )
        ex = PlanExecutor(plan_context, plan_relin, plan_galois)
        run = ex.run(placed, {"x": ct})
        dec = plan_encoder.decode(
            plan_decryptor.decrypt(run.outputs["y"])
        ).real[:DIM]
        np.testing.assert_allclose(dec, m @ x, atol=0.05)
        # the dim-1 rotations ran as one fused sweep
        assert run.sweeps == 1 and run.fused_rotations == DIM - 1

    def test_zero_diagonals_are_skipped(self, plan_context):
        m = np.eye(DIM)  # only diagonal 0 is nonzero: no rotations
        graph, _ = matvec_graph(m)
        counts = graph.op_counts()
        assert counts.get("rotate", 0) == 0
        assert counts["mul_plain"] == 1

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            matvec_graph(np.zeros((2, 3)))

    def test_splice_requires_input_node(self):
        g = PlanGraph()
        with pytest.raises(ValueError, match="input_node is required"):
            matvec_graph(np.eye(2), graph=g)

    def test_splice_extends_existing_graph(self, plan_context):
        g = PlanGraph()
        x = g.input("x")
        _, out = matvec_graph(np.eye(DIM) * 0.5, graph=g, input_node=x)
        g.output(g.square(out), "y")
        placed = compile_plan(g, plan_context)
        assert "y" in placed.outputs
        check_plan(placed, plan_context)


class TestWorkloadGraph:
    def test_outputs_one_per_lane(self, plan_context):
        graph = WorkloadGenerator.dot_product(DIM).to_plan(3, plan_context)
        assert set(graph.outputs) == {f"lane{i}_out" for i in range(3)}
        # the lowered graph passes the planner's own front door
        compile_plan(graph, plan_context, rescale_outputs=False)

    def test_optimized_equals_naive_bit_for_bit(
        self, plan_context, plan_encoder, plan_encryptor, plan_relin, plan_galois
    ):
        graph = workload_graph(
            WorkloadGenerator.dot_product(DIM), 3, plan_context
        )
        rng = np.random.default_rng(5)
        inputs = fresh_lane_inputs(
            graph,
            lambda name: plan_encryptor.encrypt(
                plan_encoder.encode(list(rng.uniform(-0.5, 0.5, 4)))
            ),
        )
        ex = PlanExecutor(plan_context, plan_relin, plan_galois)
        fast = ex.run(graph, dict(inputs), optimize=True)
        slow = ex.run(graph, dict(inputs), optimize=False)
        for name in graph.outputs:
            assert serialize_ciphertext(fast.outputs[name]) == serialize_ciphertext(
                slow.outputs[name]
            ), f"bit mismatch on {name}"
        # parallel lanes actually packed
        assert fast.packed_ops > 0

    def test_infeasible_workload_raises_loudly(self):
        ctx2 = CkksContext(toy_parameters(n=64, k=2, prime_bits=30))
        heavy = Workload("heavy", {"cc_mult": 1})
        with pytest.raises(ValueError, match="does not fit even on a fresh"):
            workload_graph(heavy, 1, ctx2)

    def test_needs_at_least_one_lane(self, plan_context):
        with pytest.raises(ValueError, match="at least one lane"):
            workload_graph(WorkloadGenerator.dot_product(4), 0, plan_context)

    def test_deep_workload_resets_lanes(self, plan_context):
        # enough multiplies to exhaust k=4: the lane re-enters through a
        # fresh reset input instead of failing
        deep = Workload("deep", {"cc_mult": 4, "rescale": 4})
        graph = workload_graph(deep, 1, plan_context)
        assert len(graph.inputs) > 1
        assert any("reset" in name for name in graph.inputs)
        compile_plan(graph, plan_context, rescale_outputs=False)
