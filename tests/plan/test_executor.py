"""PlanExecutor: bit-identity of the two modes, sweep/batch accounting,
and the CountingBackend regression for the hoisted fan-out.
"""

import numpy as np
import pytest

from repro.ckks.backend import CountingBackend
from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Encryptor
from repro.ckks.keys import KeyGenerator
from repro.ckks.serialization import serialize_ciphertext
from repro.plan.executor import PlanExecutor
from repro.plan.graph import PlanGraph
from repro.plan.lower import matvec_graph
from repro.plan.passes import compile_plan


@pytest.fixture(scope="module")
def executor(plan_context, plan_relin, plan_galois):
    return PlanExecutor(
        plan_context, relin_key=plan_relin, galois_keys=plan_galois
    )


def _encrypt(plan_encoder, plan_encryptor, values):
    return plan_encryptor.encrypt(plan_encoder.encode(values))


def _mixed_graph(plan_context):
    """A matvec spliced with squares and cross-lane adds: sweeps, batch
    lanes, and scalar stragglers all in one plan."""
    dim = 8
    rng = np.random.default_rng(17)
    matrix = rng.uniform(0.1, 1.0, (dim, dim))
    g = PlanGraph()
    x = g.input("x")
    z = g.input("z")
    _, y = matvec_graph(matrix, graph=g, input_node=x)
    sq_x = g.rescale(g.square(x))
    sq_z = g.rescale(g.square(z))
    g.output(g.add(sq_x, sq_z), "squares")
    g.output(y, "matvec")
    return compile_plan(g, plan_context, rescale_outputs=False)


class TestBitIdentity:
    def test_optimized_equals_naive_bit_for_bit(
        self, plan_context, plan_encoder, plan_encryptor, executor
    ):
        placed = _mixed_graph(plan_context)
        inputs = {
            "x": _encrypt(plan_encoder, plan_encryptor, list(np.linspace(-1, 1, 32))),
            "z": _encrypt(plan_encoder, plan_encryptor, [0.25, -0.5, 0.75]),
        }
        fast = executor.run(placed, inputs, optimize=True)
        slow = executor.run(placed, inputs, optimize=False)
        assert set(fast.outputs) == set(slow.outputs) == {"squares", "matvec"}
        for name in fast.outputs:
            assert serialize_ciphertext(fast.outputs[name]) == serialize_ciphertext(
                slow.outputs[name]
            ), f"bit mismatch on output {name!r}"
        # the optimized run actually exercised both mechanisms
        assert fast.sweeps >= 1 and fast.fused_rotations >= 2
        assert slow.sweeps == 0 and slow.scalar_ops == len(slow.steps)


class TestSweepAccounting:
    ROTS = 5

    def _sweep_graph(self):
        g = PlanGraph()
        x = g.input("x")
        for step in range(1, self.ROTS + 1):
            g.output(g.rotate(x, step), f"r{step}")
        return g

    def test_fused_sweep_bills_shared_decompose_once(
        self, plan_context, plan_encoder, plan_encryptor, executor
    ):
        g = self._sweep_graph()
        ct = _encrypt(plan_encoder, plan_encryptor, [1.0, 2.0, 3.0])
        run = executor.run(g, {"x": ct}, optimize=True)
        assert run.sweeps == 1 and run.fused_rotations == self.ROTS
        (step,) = run.steps
        assert step.mode == "sweep" and step.rotations == self.ROTS
        assert step.scheduled.kind == "keyswitch"
        # the shared input crosses once; outputs bill per rotation
        assert step.scheduled.output_bytes == self.ROTS * step.scheduled.input_bytes

    def test_naive_sweep_bills_every_rotation_in_full(
        self, plan_context, plan_encoder, plan_encryptor, executor
    ):
        g = self._sweep_graph()
        ct = _encrypt(plan_encoder, plan_encryptor, [1.0, 2.0, 3.0])
        run = executor.run(g, {"x": ct}, optimize=False)
        assert run.sweeps == 0 and len(run.steps) == self.ROTS
        for step in run.steps:
            assert step.mode == "scalar"
            assert step.scheduled.input_bytes == step.scheduled.output_bytes

    def test_hoisted_fanout_runs_once_on_counting_backend(self):
        """The transform-count regression: an optimized 3-rotation sweep
        pays ONE decomposition fan-out (L INTT + L^2 NTT rows), the
        naive run pays it per rotation."""
        L, R = 3, 3
        be = CountingBackend("reference")
        ctx = CkksContext(toy_parameters(n=64, k=L, prime_bits=30), backend=be)
        kg = KeyGenerator(ctx, seed=91)
        enc = Encryptor(ctx, kg.public_key(), seed=92)
        ct = enc.encrypt(CkksEncoder(ctx).encode([0.5, -0.5]))
        ex = PlanExecutor(ctx, galois_keys=kg.galois_keys(range(1, R + 1)))
        g = PlanGraph()
        x = g.input("x")
        for step in range(1, R + 1):
            g.output(g.rotate(x, step), f"r{step}")

        be.reset()
        ex.run(g, {"x": ct}, optimize=True)
        assert be.counts["ntt_inverse"] == L + 2 * R
        assert be.counts["ntt_forward"] == L * L + 2 * L * R

        be.reset()
        ex.run(g, {"x": ct}, optimize=False)
        assert be.counts["ntt_inverse"] == R * (L + 2)
        assert be.counts["ntt_forward"] == R * (L * L + 2 * L)


class TestBatchPacking:
    def test_independent_squares_pack_into_one_lane(
        self, plan_context, plan_encoder, plan_encryptor, executor
    ):
        n_lanes = 4
        g = PlanGraph()
        for i in range(n_lanes):
            g.output(g.square(g.input(f"x{i}")), f"y{i}")
        inputs = {
            f"x{i}": _encrypt(plan_encoder, plan_encryptor, [0.1 * (i + 1)])
            for i in range(n_lanes)
        }
        run = executor.run(g, inputs, optimize=True)
        assert run.lanes == 1 and run.packed_ops == n_lanes
        (step,) = run.steps
        assert step.mode == "batch" and step.width == n_lanes

    def test_mixed_shapes_do_not_share_a_lane(
        self, plan_context, plan_encoder, plan_encryptor, executor
    ):
        g = PlanGraph()
        g.output(g.square(g.input("a")), "ya")
        g.output(g.square(g.input("b", level_count=3)), "yb")
        ct_a = _encrypt(plan_encoder, plan_encryptor, [0.5])
        ct_b = executor.evaluator.rescale(
            executor.evaluator.multiply_plain(
                _encrypt(plan_encoder, plan_encryptor, [0.5]),
                plan_encoder.encode(1.0),
            )
        )
        run = executor.run(g, {"a": ct_a, "b": ct_b}, optimize=True)
        assert run.lanes == 0 and run.scalar_ops == 2


class TestKeyAndInputDiscipline:
    def test_missing_relin_key_rejected(self, plan_context, plan_galois):
        ex = PlanExecutor(plan_context, galois_keys=plan_galois)
        g = PlanGraph()
        g.square(g.input("x"))
        with pytest.raises(ValueError, match="no\\s+relinearization key"):
            ex.run(g, {})

    def test_missing_galois_keys_rejected(self, plan_context, plan_relin):
        ex = PlanExecutor(plan_context, relin_key=plan_relin)
        g = PlanGraph()
        g.rotate(g.input("x"), 1)
        with pytest.raises(ValueError, match="no Galois keys"):
            ex.run(g, {})

    def test_missing_input_rejected(
        self, executor, plan_encoder, plan_encryptor
    ):
        g = PlanGraph()
        g.output(g.negate(g.input("x")), "y")
        with pytest.raises(ValueError, match="inputs not supplied: x"):
            executor.run(g, {})

    def test_extra_input_rejected(
        self, executor, plan_encoder, plan_encryptor
    ):
        g = PlanGraph()
        g.output(g.negate(g.input("x")), "y")
        ct = _encrypt(plan_encoder, plan_encryptor, [1.0])
        with pytest.raises(ValueError, match="unknown plan inputs: ghost"):
            executor.run(g, {"x": ct, "ghost": ct})
