"""Modeled-FPGA replay of measured plan runs on the Table 5 sets."""

import numpy as np
import pytest

from repro.core.perf import CLOCK_HZ
from repro.plan.executor import PlanExecutor
from repro.plan.hwsim import (
    PAPER_SET_NAMES,
    architecture_for,
    modeled_replay,
    modeled_replays,
)
from repro.plan.lower import matvec_graph
from repro.plan.passes import compile_plan

DIM = 8


@pytest.fixture(scope="module")
def matvec_run(plan_context, plan_encoder, plan_encryptor, plan_relin, plan_galois):
    rng = np.random.default_rng(3)
    graph, _ = matvec_graph(rng.uniform(0.1, 1.0, (DIM, DIM)))
    placed = compile_plan(graph, plan_context, rescale_outputs=False)
    packed = np.zeros(plan_encoder.slot_count)
    packed[: 2 * DIM] = 0.25
    ct = plan_encryptor.encrypt(plan_encoder.encode(packed))
    ex = PlanExecutor(plan_context, plan_relin, plan_galois)
    return ex.run(placed, {"x": ct})


class TestModeledReplay:
    def test_replays_on_every_paper_set(self, matvec_run, plan_context):
        replays = modeled_replays(matvec_run, plan_context)
        assert set(replays) == set(PAPER_SET_NAMES)
        for r in replays.values():
            assert r.cycles > 0 and r.seconds > 0

    def test_deeper_sets_cost_more_cycles(self, matvec_run, plan_context):
        replays = modeled_replays(matvec_run, plan_context)
        a, b, c = (replays[s].cycles for s in PAPER_SET_NAMES)
        assert a < b < c

    def test_sweep_dominates_the_kind_breakdown(self, matvec_run, plan_context):
        r = modeled_replay(matvec_run, plan_context, "Set-B")
        assert "sweep" in r.cycles_by_kind
        assert "rescale" in r.cycles_by_kind
        assert r.cycles == pytest.approx(sum(r.cycles_by_kind.values()))

    def test_seconds_follow_the_device_clock(self, matvec_run, plan_context):
        r = modeled_replay(matvec_run, plan_context, "Set-A", device="Stratix10")
        assert r.seconds == pytest.approx(r.cycles / CLOCK_HZ["Stratix10"])

    def test_level_counts_clamp_to_architecture(self, matvec_run, plan_context):
        # the k=4 toy run replays on Set-A (k=2) without error
        arch = architecture_for("Set-A")
        r = modeled_replay(matvec_run, plan_context, "Set-A")
        assert r.k == arch.k and r.n == arch.n
