"""PlanGraph builder: validation, traversal, and the topo contract."""

import pytest

from repro.plan.graph import CIPHER_OPS, KEYSWITCH_OPS, PlanGraph


class TestBuilderValidation:
    def test_cipher_op_rejects_const_operand(self):
        g = PlanGraph()
        c = g.const([1.0, 2.0])
        with pytest.raises(ValueError, match="not a ciphertext value"):
            g.add(c, c)

    def test_mul_plain_rejects_non_const_operand(self):
        g = PlanGraph()
        x = g.input("x")
        y = g.input("y")
        with pytest.raises(ValueError, match="not a const node"):
            g.mul_plain(x, y)

    def test_rotate_rejects_zero_step(self):
        g = PlanGraph()
        x = g.input("x")
        with pytest.raises(ValueError, match="nonzero"):
            g.rotate(x, 0)

    def test_unknown_node_id_rejected(self):
        g = PlanGraph()
        x = g.input("x")
        with pytest.raises(ValueError, match="unknown node id"):
            g.add(x, 999)

    def test_duplicate_input_name_rejected(self):
        g = PlanGraph()
        g.input("x")
        with pytest.raises(ValueError, match="duplicate input name"):
            g.input("x")

    def test_duplicate_output_name_rejected(self):
        g = PlanGraph()
        x = g.input("x")
        g.output(x, "y")
        with pytest.raises(ValueError, match="duplicate output name"):
            g.output(x, "y")

    def test_output_rejects_const_node(self):
        g = PlanGraph()
        c = g.const(1.0)
        with pytest.raises(ValueError, match="not a ciphertext value"):
            g.output(c)

    def test_const_scale_must_be_positive(self):
        g = PlanGraph()
        with pytest.raises(ValueError, match="positive"):
            g.const(1.0, scale=-2.0)


class TestTraversal:
    def _chain(self):
        g = PlanGraph()
        x = g.input("x")
        s = g.square(x)
        r = g.rescale(s)
        p = g.mul_plain(r, g.const(0.5))
        g.output(p, "y")
        return g, (x, s, r, p)

    def test_topo_order_is_construction_order(self):
        g, _ = self._chain()
        order = g.topo_order()
        assert [n.id for n in order] == sorted(g.nodes)
        # every node's ciphertext operands appear strictly before it
        seen = set()
        for node in order:
            assert all(i in seen for i in node.inputs)
            seen.add(node.id)

    def test_op_counts(self):
        g, _ = self._chain()
        counts = g.op_counts()
        assert counts == {
            "input": 1,
            "square": 1,
            "rescale": 1,
            "const": 1,
            "mul_plain": 1,
        }

    def test_inputs_outputs_maps(self):
        g, (x, _, _, p) = self._chain()
        assert g.inputs == {"x": x}
        assert g.outputs == {"y": p}
        assert len(g) == 5

    def test_consumers(self):
        g, (x, s, r, p) = self._chain()
        consumers = g.consumers()
        assert consumers[x] == [s]
        assert consumers[s] == [r]
        assert consumers[r] == [p]
        assert consumers[p] == []

    def test_default_output_names_are_sequential(self):
        g = PlanGraph()
        a = g.input("a")
        b = g.input("b")
        g.output(a)
        g.output(b)
        assert set(g.outputs) == {"out0", "out1"}


def test_keyswitch_ops_are_cipher_ops():
    assert KEYSWITCH_OPS <= CIPHER_OPS
    assert "const" not in CIPHER_OPS
