"""Tests for the M20K/word-packing memory model (Section 4.2)."""

import pytest

from repro.core.memory import (
    BankedMemory,
    COEFF_BITS,
    M20K_BITS,
    M20K_DEPTH,
    M20K_WIDTH,
    MemoryLayout,
    naive_layout_utilization,
)


class TestM20KGeometry:
    def test_constants(self):
        assert M20K_DEPTH == 512
        assert M20K_WIDTH == 40
        assert M20K_BITS == 512 * 40
        assert COEFF_BITS == 54


class TestMemoryLayout:
    def test_paper_packing_example_beta8(self):
        """beta = 8: 98%+ width utilization (Section 4.2)."""
        layout = MemoryLayout(8192, 8)
        assert layout.width_utilization > 0.98

    def test_naive_baseline_is_68_percent(self):
        assert naive_layout_utilization() == pytest.approx(54 / 80)

    def test_width_units(self):
        layout = MemoryLayout(8192, 8)
        assert layout.m20k_width_units == -(-8 * 54 // 40)  # ceil(432/40)=11

    def test_depth_full_utilization_condition(self):
        """M20K fully used depth-wise iff n/beta >= 512."""
        full = MemoryLayout(8192, 16)  # depth 512
        assert full.depth_utilization == 1.0
        half = MemoryLayout(4096, 16)  # depth 256 -- the paper's n=2^12 case
        assert half.depth_utilization == 0.5

    def test_total_units(self):
        layout = MemoryLayout(8192, 8)  # depth 1024 -> 2 stacks of 11
        assert layout.m20k_units == 22

    def test_logical_bits(self):
        assert MemoryLayout(4096, 8).logical_bits == 4096 * 54

    def test_lane_divisibility_enforced(self):
        with pytest.raises(ValueError):
            MemoryLayout(100, 8)


class TestBankedMemory:
    def test_load_dump_roundtrip(self):
        mem = BankedMemory(64, 8)
        vals = list(range(64))
        mem.load(vals)
        assert mem.dump() == vals

    def test_row_addressing(self):
        mem = BankedMemory(64, 8)
        mem.load(list(range(64)))
        assert mem.read_row(2) == list(range(16, 24))

    def test_access_counters(self):
        mem = BankedMemory(64, 8)
        mem.load([0] * 64)
        mem.read_row(0)
        mem.read_row(1)
        mem.write_row(0, [1] * 8)
        assert mem.reads == 2
        assert mem.writes == 1

    def test_write_width_check(self):
        mem = BankedMemory(64, 8)
        with pytest.raises(ValueError):
            mem.write_row(0, [1] * 4)

    def test_load_length_check(self):
        mem = BankedMemory(64, 8)
        with pytest.raises(ValueError):
            mem.load([0] * 63)

    def test_layout_view(self):
        mem = BankedMemory(8192, 8)
        assert mem.layout().m20k_units == MemoryLayout(8192, 8).m20k_units
