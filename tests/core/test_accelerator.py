"""Tests for the top-level HEAX accelerator model."""

import pytest

from repro.ckks.sampling import Sampler
from repro.core.accelerator import HeaxAccelerator


class TestConstruction:
    def test_all_paper_configs_instantiate(self):
        for dev, ps in [
            ("Arria10", "Set-A"),
            ("Stratix10", "Set-A"),
            ("Stratix10", "Set-B"),
            ("Stratix10", "Set-C"),
        ]:
            acc = HeaxAccelerator(dev, ps)
            assert acc.board.chip
            assert acc.arch.n == acc.spec.n

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            HeaxAccelerator("Virtex7", "Set-A")

    def test_unsupported_combo_rejected(self):
        with pytest.raises(ValueError):
            HeaxAccelerator("Arria10", "Set-C")  # paper only built Set-A on Arria


class TestThroughputSurface:
    def test_throughputs_keys(self):
        acc = HeaxAccelerator("Stratix10", "Set-B")
        t = acc.throughputs()
        assert set(t) == {"NTT", "INTT", "Dyadic", "KeySwitch", "MULT+ReLin"}

    def test_clock_matches_board(self):
        assert HeaxAccelerator("Arria10", "Set-A").clock_hz == 275e6


class TestFunctionalExecution:
    def test_execute_keyswitch_counts_ops(self, toy_context, keygen, relin_key):
        acc = HeaxAccelerator("Stratix10", "Set-B", context=toy_context)
        target = Sampler(21).uniform_residues(
            toy_context.n, toy_context.data_basis.moduli
        )
        (f0, f1), stats = acc.execute_keyswitch(target, relin_key)
        assert acc.counters.keyswitch_ops == 1
        assert acc.counters.total_cycles == stats.throughput_cycles
        assert f0.is_ntt and f1.is_ntt

    def test_execute_dyadic(self, toy_context):
        import random

        acc = HeaxAccelerator("Stratix10", "Set-A", context=toy_context)
        m = toy_context.data_basis[0]
        rng = random.Random(5)
        a = [rng.randrange(m.value) for _ in range(toy_context.n)]
        b = [rng.randrange(m.value) for _ in range(toy_context.n)]
        out, stats = acc.execute_dyadic(a, b, m)
        assert out == [m.mul(x, y) for x, y in zip(a, b)]
        assert acc.counters.dyadic_ops == 1

    def test_functional_requires_context(self):
        acc = HeaxAccelerator("Stratix10", "Set-B")
        with pytest.raises(RuntimeError):
            acc.execute_dyadic([1], [1], None)

    def test_elapsed_seconds(self, toy_context, relin_key):
        acc = HeaxAccelerator("Stratix10", "Set-B", context=toy_context)
        target = Sampler(22).uniform_residues(
            toy_context.n, toy_context.data_basis.moduli
        )
        acc.execute_keyswitch(target, relin_key)
        assert acc.counters.elapsed_seconds(acc.clock_hz) > 0


class TestReporting:
    def test_describe_mentions_structure(self):
        acc = HeaxAccelerator("Stratix10", "Set-B")
        text = acc.describe()
        assert "Stratix 10" in text
        assert "KeySwitch module" in text
        assert "f1=4" in text

    def test_utilization_fractions(self):
        acc = HeaxAccelerator("Stratix10", "Set-B")
        util = acc.utilization()
        assert 0 < util["dsp"] < 1
        assert 0 < util["alm"] < 1

    def test_fits_on_board(self):
        assert HeaxAccelerator("Stratix10", "Set-A").fits_on_board()
