"""Tests for the MULT module simulator (Section 4.1)."""

import random

import pytest

from repro.ckks.modarith import Modulus
from repro.ckks.primes import generate_ntt_primes
from repro.core.mult_module import MultModuleSim

N = 64
P = generate_ntt_primes(N, 30, 1)[0]
MOD = Modulus(P)


def rand_poly(seed):
    rng = random.Random(seed)
    return [rng.randrange(P) for _ in range(N)]


class TestDyadicMultiply:
    @pytest.mark.parametrize("nc", [1, 4, 8, 16])
    def test_functional(self, nc):
        sim = MultModuleSim(MOD, N, nc)
        a, b = rand_poly(1), rand_poly(2)
        out, _ = sim.dyadic_multiply(a, b)
        assert out == [x * y % P for x, y in zip(a, b)]

    @pytest.mark.parametrize("nc", [4, 8, 16])
    def test_cycles_formula(self, nc):
        """One polynomial pair takes n / nc cycles (Table 7 Dyadic rate)."""
        sim = MultModuleSim(MOD, N, nc)
        _, stats = sim.dyadic_multiply(rand_poly(3), rand_poly(4))
        assert stats.cycles == N // nc == sim.pair_cycles()


class TestCiphertextMultiply:
    def test_two_by_two_matches_algorithm5(self):
        """(a0,a1) x (b0,b1) -> (a0b0, a0b1+a1b0, a1b1)."""
        sim = MultModuleSim(MOD, N, 8)
        a0, a1, b0, b1 = (rand_poly(i) for i in range(4))
        outs, stats = sim.ciphertext_multiply([a0, a1], [b0, b1])
        assert stats.output_components == 3
        assert outs[0] == [x * y % P for x, y in zip(a0, b0)]
        assert outs[1] == [
            (x * w + y * z) % P for x, y, z, w in zip(a0, a1, b0, b1)
        ]
        assert outs[2] == [x * y % P for x, y in zip(a1, b1)]

    def test_three_by_two_general_case(self):
        """An unrelinearized (size-3) times a fresh (size-2) ciphertext."""
        sim = MultModuleSim(MOD, N, 8)
        ct1 = [rand_poly(i) for i in range(3)]
        ct2 = [rand_poly(10 + i) for i in range(2)]
        outs, stats = sim.ciphertext_multiply(ct1, ct2)
        assert len(outs) == 4
        # reference convolution of component indices
        ref = [[0] * N for _ in range(4)]
        for i in range(3):
            for j in range(2):
                for t in range(N):
                    ref[i + j][t] = (ref[i + j][t] + ct1[i][t] * ct2[j][t]) % P
        assert outs == ref

    def test_ciphertext_plaintext_mode(self):
        """beta = 1 is the C-P multiplication special case."""
        sim = MultModuleSim(MOD, N, 8)
        ct = [rand_poly(20), rand_poly(21)]
        pt = [rand_poly(22)]
        outs, stats = sim.ciphertext_multiply(ct, pt)
        assert len(outs) == 2
        for o, c in zip(outs, ct):
            assert o == [x * y % P for x, y in zip(c, pt[0])]

    def test_cycle_formula_alpha_beta(self):
        sim = MultModuleSim(MOD, N, 8)
        _, stats = sim.ciphertext_multiply(
            [rand_poly(30), rand_poly(31)], [rand_poly(32), rand_poly(33)]
        )
        assert stats.cycles == sim.ciphertext_cycles(2, 2)


class TestTransferPolicy:
    def test_paper_policy_is_linear(self):
        sim = MultModuleSim(MOD, N, 8)
        t = sim.transfer_words(2, 2)
        assert t["paper_policy"] == 4 * N
        assert t["min_bram_policy"] == 6 * N
        assert t["paper_policy"] < t["min_bram_policy"]

    def test_policy_gap_grows_with_components(self):
        sim = MultModuleSim(MOD, N, 8)
        small = sim.transfer_words(2, 2)
        big = sim.transfer_words(3, 3)
        gap_small = small["min_bram_policy"] - small["paper_policy"]
        gap_big = big["min_bram_policy"] - big["paper_policy"]
        assert gap_big > gap_small


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            MultModuleSim(MOD, N, 3)

    def test_rejects_non_dividing_cores(self):
        with pytest.raises(ValueError):
            MultModuleSim(MOD, 48, 32)
