"""Resource-model tests against Tables 3, 4 and 6."""

import pytest

from repro.analysis.paper_data import (
    TABLE4_MODULES,
    TABLE6_DESIGNS,
)
from repro.core.arch import TABLE5_ARCHITECTURES
from repro.core.resources import ResourceModel, ResourceVector


@pytest.fixture(scope="module")
def model():
    return ResourceModel()


class TestResourceVector:
    def test_addition(self):
        a = ResourceVector(1, 2, 3, 4, 5)
        b = ResourceVector(10, 20, 30, 40, 50)
        s = a + b
        assert (s.dsp, s.reg, s.alm, s.bram_bits, s.m20k) == (11, 22, 33, 44, 55)

    def test_scaling(self):
        v = ResourceVector(1, 2, 3, 4, 5).scaled(3)
        assert (v.dsp, v.reg, v.alm) == (3, 6, 9)

    def test_utilization_and_fit(self):
        small = ResourceVector(dsp=100, reg=1000, alm=1000, bram_bits=1000, m20k=10)
        assert small.fits("Stratix10")
        huge = ResourceVector(dsp=10_000)
        assert not huge.fits("Stratix10")


class TestModuleDsp:
    @pytest.mark.parametrize("kind,nc", sorted(TABLE4_MODULES))
    def test_dsp_exact(self, model, kind, nc):
        """DSP = nc x per-core DSP, exactly as in Table 4."""
        assert model.module_resources(kind, nc).dsp == TABLE4_MODULES[(kind, nc)].dsp


class TestModuleRegAlm:
    @pytest.mark.parametrize("kind,nc", sorted(TABLE4_MODULES))
    def test_calibrated_values_returned_verbatim(self, model, kind, nc):
        row = TABLE4_MODULES[(kind, nc)]
        rv = model.module_resources(kind, nc)
        assert rv.reg == row.reg
        assert rv.alm == row.alm

    @pytest.mark.parametrize("kind", ["ntt", "intt", "mult"])
    def test_structural_fit_interpolates_sanely(self, model, kind):
        """Uncalibrated core counts should land between neighbours."""
        r4 = model.module_resources(kind, 4)
        r2 = model.module_resources(kind, 2)
        r8 = model.module_resources(kind, 8)
        assert r2.alm < r4.alm < r8.alm
        assert r2.reg < r4.reg < r8.reg

    def test_single_core_module_positive(self, model):
        rv = model.module_resources("intt", 1)  # Set-C uses INTT(1)
        assert rv.dsp == 10
        assert rv.reg > 0 and rv.alm > 0

    def test_dyad_alias(self, model):
        assert model.module_resources("dyad", 8) == model.module_resources("mult", 8)


class TestModuleBram:
    def test_bits_scale_with_n(self, model):
        b13 = model.module_bram_bits("ntt", 8192)
        b12 = model.module_bram_bits("ntt", 4096)
        assert b13 == TABLE4_MODULES[("ntt", 8)].bram_bits
        assert b12 == b13 // 2

    def test_m20k_calibrated_at_reference_n(self, model):
        assert model.module_m20k("ntt", 16, 8192) == 380

    def test_m20k_structural_for_other_n(self, model):
        units = model.module_m20k("ntt", 16, 4096)
        assert units > 0


class TestDesignComposition:
    @pytest.mark.parametrize(
        "key,expected_exact",
        [
            (("Arria10", "Set-A"), True),
            (("Stratix10", "Set-A"), True),
            (("Stratix10", "Set-B"), True),
            (("Stratix10", "Set-C"), False),  # paper row is 60 DSP higher
        ],
    )
    def test_dsp_composition_vs_table6(self, model, key, expected_exact):
        arch = TABLE5_ARCHITECTURES[key]
        rv = model.complete_design(key[0], arch)
        paper = TABLE6_DESIGNS[key].dsp
        if expected_exact:
            assert rv.dsp == paper
        else:
            assert abs(rv.dsp - paper) / paper < 0.03

    @pytest.mark.parametrize("key", sorted(TABLE6_DESIGNS))
    def test_reg_alm_within_tolerance(self, model, key):
        """REG/ALM composition tracks Table 6 (Stratix-calibrated module
        data; the Arria row overshoots, see EXPERIMENTS.md)."""
        arch = TABLE5_ARCHITECTURES[key]
        rv = model.complete_design(key[0], arch)
        row = TABLE6_DESIGNS[key]
        tolerance = 0.55 if key[0] == "Arria10" else 0.10
        assert abs(rv.reg - row.reg) / row.reg < tolerance
        assert abs(rv.alm - row.alm) / row.alm < tolerance

    @pytest.mark.parametrize("key", sorted(TABLE6_DESIGNS))
    def test_designs_fit_their_boards(self, model, key):
        arch = TABLE5_ARCHITECTURES[key]
        rv = model.complete_design(key[0], arch)
        util = rv.utilization(key[0])
        assert util["dsp"] <= 1.0
        assert util["alm"] <= 1.0
        assert util["reg"] <= 1.0

    def test_keyswitch_storage_grows_as_nk2(self, model):
        """ksk storage is the fastest-growing component (Section 5.1)."""
        small = ResourceModel.keyswitch_storage_bits(
            TABLE5_ARCHITECTURES[("Stratix10", "Set-A")]
        )
        large = ResourceModel.keyswitch_storage_bits(
            TABLE5_ARCHITECTURES[("Stratix10", "Set-C")]
        )
        # n x4, k x4: the ksk term alone grows ~48x; the buffer terms grow
        # only ~linearly, so the total lands near 10x between Set-A and
        # Set-C -- still far superlinear in n.
        assert large > 8 * small

    def test_more_resident_keys_cost_more_bram(self, model):
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-B")]
        one = model.complete_design("Stratix10", arch, resident_ksks=1)
        ten = model.complete_design("Stratix10", arch, resident_ksks=10)
        assert ten.bram_bits > one.bram_bits
        assert ten.dsp == one.dsp  # keys cost memory, not logic
