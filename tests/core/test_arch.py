"""Tests for the Table 5 architectures and Section 4.3 balancing math."""

import pytest

from repro.core.arch import (
    KeySwitchArchitecture,
    STANDALONE_MODULE_CORES,
    TABLE5_ARCHITECTURES,
    choose_module_split,
    derive_architecture,
    next_power_of_two,
)


class TestModuleSplitRule:
    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_rule_reproduces_table5_splits(self, key):
        arch = TABLE5_ARCHITECTURES[key]
        assert choose_module_split(arch.total_ntt0_cores) == arch.m0

    def test_small_totals(self):
        assert choose_module_split(1) == 1
        assert choose_module_split(2) == 2  # at least two modules

    def test_modules_capped_at_16_cores(self):
        for total in (16, 32, 64, 128):
            m0 = choose_module_split(total)
            assert total // m0 <= 16


class TestNextPowerOfTwo:
    def test_values(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(3) == 4
        assert next_power_of_two(4) == 4
        assert next_power_of_two(5) == 8

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestTable5Architectures:
    def test_all_four_rows_present(self):
        assert len(TABLE5_ARCHITECTURES) == 4

    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_ntt0_layer_provides_k_fold_throughput(self, key):
        """Total NTT0 cores = k * INTT0 cores (the k-NTTs-per-INTT rule)."""
        arch = TABLE5_ARCHITECTURES[key]
        assert arch.total_ntt0_cores == arch.k * arch.nc_intt0

    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_dyad_module_count_is_m0_plus_1(self, key):
        arch = TABLE5_ARCHITECTURES[key]
        assert arch.dyad[0] == arch.m0 + 1

    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_throughput_balanced(self, key):
        assert TABLE5_ARCHITECTURES[key].throughput_balanced()

    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_f1_is_four(self, key):
        """Every Table 5 design needs quadruple input buffering (5.2)."""
        assert TABLE5_ARCHITECTURES[key].f1 == 4

    def test_f2_set_b(self):
        """f2 = ceil(1 + m0*ncINTT1/ncNTT1 + ncINTT1*log n / ncMS) = 15."""
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-B")]
        assert arch.f2 == 15

    def test_describe_matches_paper_notation(self):
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-B")]
        assert arch.describe() == (
            "1xINTT(16) -> 4xNTT(16) -> 5xDyad(8) -> 2xINTT(4) -> "
            "2xNTT(16) -> 2xMult(4)"
        )

    def test_no_module_exceeds_32_cores(self):
        """>32-core modules fail place-and-route (Section 4.3)."""
        for arch in TABLE5_ARCHITECTURES.values():
            for _, nc in (arch.intt0, arch.ntt0, arch.dyad, arch.intt1, arch.ntt1, arch.ms):
                assert nc <= 32


class TestDerivation:
    @pytest.mark.parametrize(
        "key",
        [("Arria10", "Set-A"), ("Stratix10", "Set-A"), ("Stratix10", "Set-B")],
    )
    def test_derivation_reproduces_paper_rows(self, key):
        paper = TABLE5_ARCHITECTURES[key]
        derived = derive_architecture(
            paper.name, paper.n, paper.k, paper.nc_intt0, paper.m0
        )
        assert derived.intt0 == paper.intt0
        assert derived.ntt0 == paper.ntt0
        assert derived.dyad == paper.dyad
        assert derived.intt1 == paper.intt1
        assert derived.ntt1 == paper.ntt1
        assert derived.ms == paper.ms

    def test_set_c_derivation_known_ms_deviation(self):
        """Set-C: the paper instantiates Mult(4) where the formula gives
        Mult(2) -- documented in DESIGN.md; everything else matches."""
        paper = TABLE5_ARCHITECTURES[("Stratix10", "Set-C")]
        derived = derive_architecture(paper.name, paper.n, paper.k, paper.nc_intt0, paper.m0)
        assert derived.intt0 == paper.intt0
        assert derived.ntt0 == paper.ntt0
        assert derived.dyad == paper.dyad
        assert derived.intt1 == paper.intt1
        assert derived.ntt1 == paper.ntt1
        assert derived.ms[1] <= paper.ms[1]

    def test_derived_architectures_are_balanced(self):
        for n, k, nc, m0 in [(4096, 2, 8, 2), (8192, 4, 16, 4), (16384, 8, 8, 4)]:
            arch = derive_architecture("x", n, k, nc, m0)
            assert arch.throughput_balanced()

    def test_m0_must_divide(self):
        with pytest.raises(ValueError):
            derive_architecture("x", 4096, 2, 8, 3)

    def test_unbalanced_architecture_detected(self):
        bad = KeySwitchArchitecture(
            "bad", 8192, 4,
            intt0=(1, 32), ntt0=(1, 8), dyad=(2, 8),
            intt1=(2, 8), ntt1=(2, 32), ms=(2, 4),
        )
        assert not bad.throughput_balanced()


class TestStandaloneCores:
    def test_paper_values(self):
        assert STANDALONE_MODULE_CORES["Arria10"]["ntt"] == 8
        assert STANDALONE_MODULE_CORES["Arria10"]["dyadic"] == 16
        assert STANDALONE_MODULE_CORES["Stratix10"]["ntt"] == 16
