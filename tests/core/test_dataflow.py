"""Tests validating the f1/f2 buffer sizing via discrete-event simulation."""

import pytest

from repro.core.arch import TABLE5_ARCHITECTURES
from repro.core.dataflow import AccumulatorDataflowSim, KeySwitchDataflowSim


class TestInputBuffering:
    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_f1_buffers_sustain_full_rate(self, key):
        """With the provisioned f1 buffers the pipeline runs at its ideal
        period -- the sizing is *sufficient*."""
        arch = TABLE5_ARCHITECTURES[key]
        sim = KeySwitchDataflowSim(arch)
        report = sim.run(buffers=arch.f1)
        assert report.sustains_full_rate, (key, report.throughput_loss)

    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_double_buffering_insufficient(self, key):
        """MULT-style double buffering is *not* enough for KeySwitch --
        the reason Section 5.2 quadruple-buffers its inputs."""
        arch = TABLE5_ARCHITECTURES[key]
        sim = KeySwitchDataflowSim(arch)
        report = sim.run(buffers=2)
        assert report.throughput_loss > 0.0
        assert report.writer_stall_cycles > 0

    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_minimum_buffers_at_most_f1(self, key):
        """f1 is sufficient and within one slot of minimal (the formula
        rounds conservatively)."""
        arch = TABLE5_ARCHITECTURES[key]
        sim = KeySwitchDataflowSim(arch)
        minimum = sim.minimum_sufficient_buffers()
        assert minimum <= arch.f1
        assert minimum >= arch.f1 - 1

    def test_more_buffers_never_hurt(self):
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-B")]
        sim = KeySwitchDataflowSim(arch)
        periods = [sim.run(b).achieved_period_cycles for b in range(1, 9)]
        assert periods == sorted(periods, reverse=True)

    def test_stalls_vanish_at_sufficiency(self):
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-B")]
        sim = KeySwitchDataflowSim(arch)
        assert sim.run(arch.f1).writer_stall_cycles == pytest.approx(0, abs=1)

    def test_rejects_zero_buffers(self):
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-A")]
        with pytest.raises(ValueError):
            KeySwitchDataflowSim(arch).run(buffers=0)

    def test_slow_transfer_dominates_even_with_buffers(self):
        """Sanity: if PCIe itself is slower than the pipeline, buffers
        cannot recover the rate (transfer-bound, not buffer-bound)."""
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-B")]
        sim = KeySwitchDataflowSim(arch)
        report = sim.run(buffers=8, transfer_cycles=2 * sim.ideal_period)
        assert report.throughput_loss > 0.5


class TestAccumulatorBuffering:
    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_required_polys_within_f2_provisioning(self, key):
        """The simulated peak accumulator occupancy never exceeds the f2
        provisioning (in one-poly buffer units)."""
        arch = TABLE5_ARCHITECTURES[key]
        sim = AccumulatorDataflowSim(arch)
        assert sim.required_buffer_polys() <= max(arch.f2, 2 * sim.peak_live_operations())

    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_at_least_two_operations_live(self, key):
        """The MS tail always overlaps the next accumulation -- single
        buffering of the banks can never work."""
        sim = AccumulatorDataflowSim(TABLE5_ARCHITECTURES[key])
        assert sim.peak_live_operations() >= 2

    def test_lifetime_exceeds_period(self):
        sim = AccumulatorDataflowSim(TABLE5_ARCHITECTURES[("Stratix10", "Set-B")])
        assert sim.lifetime > sim.period
