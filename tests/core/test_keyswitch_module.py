"""Tests for the KeySwitch module simulator (Section 4.3)."""

import pytest

from repro.ckks.evaluator import Evaluator
from repro.ckks.sampling import Sampler
from repro.core.arch import TABLE5_ARCHITECTURES, derive_architecture
from repro.core.keyswitch_module import KeySwitchModuleSim


@pytest.fixture(scope="module")
def toy_arch(toy_context):
    """A balanced architecture matching the toy context's k = 3."""
    return derive_architecture("toy", 4096, toy_context.k, nc_intt0=8, m0=1)


@pytest.fixture(scope="module")
def sim(toy_context, toy_arch):
    return KeySwitchModuleSim(toy_context, toy_arch)


class TestFunctionalEquivalence:
    def test_matches_evaluator_full_level(self, toy_context, sim, relin_key):
        target = Sampler(11).uniform_residues(
            toy_context.n, toy_context.data_basis.moduli
        )
        (f0, f1), _ = sim.run(target, relin_key)
        g0, g1 = Evaluator(toy_context).keyswitch_polynomial(target, relin_key)
        assert f0 == g0
        assert f1 == g1

    def test_matches_evaluator_lower_level(self, toy_context, sim, relin_key):
        target = Sampler(12).uniform_residues(
            toy_context.n, toy_context.basis_at_level(2).moduli
        )
        (f0, f1), _ = sim.run(target, relin_key)
        g0, g1 = Evaluator(toy_context).keyswitch_polynomial(target, relin_key)
        assert f0 == g0
        assert f1 == g1

    def test_rejects_coefficient_form(self, toy_context, sim, relin_key):
        from repro.ckks.poly import RnsPolynomial

        coeff = RnsPolynomial.from_int_coeffs(
            [1] * toy_context.n, toy_context.data_basis.moduli
        )
        with pytest.raises(ValueError):
            sim.run(coeff, relin_key)

    def test_galois_key_switch(self, toy_context, sim, keygen):
        """The module works for rotation keys too, not just relin keys."""
        elt = toy_context.galois_element_for_step(1)
        gk = keygen.galois_key(elt)
        target = Sampler(13).uniform_residues(
            toy_context.n, toy_context.data_basis.moduli
        )
        (f0, f1), _ = sim.run(target, gk)
        g0, g1 = Evaluator(toy_context).keyswitch_polynomial(target, gk)
        assert f0 == g0 and f1 == g1


class TestTiming:
    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_intt0_is_bottleneck_for_paper_archs(self, toy_context, key):
        arch = TABLE5_ARCHITECTURES[key]
        sim = KeySwitchModuleSim(toy_context, arch)
        stats = sim.timing()
        assert stats.bottleneck == "INTT0"

    @pytest.mark.parametrize("key", sorted(TABLE5_ARCHITECTURES))
    def test_throughput_equals_closed_form(self, toy_context, key):
        """Pipeline period == k n log n / (2 nc_INTT0) -- the Table 8 rate."""
        arch = TABLE5_ARCHITECTURES[key]
        sim = KeySwitchModuleSim(toy_context, arch)
        stats = sim.timing()
        expected = arch.k * arch.n * arch.log_n / (2 * arch.nc_intt0)
        assert stats.throughput_cycles == pytest.approx(expected)

    def test_lower_level_unloads_intt0_but_not_the_tail(self, toy_context):
        """The designs are balanced for the *full* level: a lower-level
        ciphertext halves the INTT0 busy time, yet the Modulus-Switch
        tail (INTT1) is level-independent and keeps the pipeline period
        -- the throughput bound moves, it does not drop."""
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-B")]
        sim = KeySwitchModuleSim(toy_context, arch)
        full = sim.timing()
        lower = sim.timing(level_count=2)
        assert lower.stage_busy_cycles["INTT0"] < full.stage_busy_cycles["INTT0"]
        assert lower.stage_busy_cycles["INTT1"] == full.stage_busy_cycles["INTT1"]
        assert lower.throughput_cycles == full.throughput_cycles
        assert lower.bottleneck == "INTT1"

    def test_latency_exceeds_throughput(self, toy_context, toy_arch):
        sim = KeySwitchModuleSim(toy_context, toy_arch)
        stats = sim.timing()
        assert stats.latency_cycles > stats.throughput_cycles


class TestPipelineTimeline:
    def test_consecutive_ops_overlap(self, toy_context):
        """Figure 6: multiple key switches in flight simultaneously."""
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-B")]
        sim = KeySwitchModuleSim(toy_context, arch)
        timeline = sim.pipeline_timeline(num_ops=3)
        op0_end = max(iv.end for iv in timeline if iv.op_index == 0)
        op1_start = min(iv.start for iv in timeline if iv.op_index == 1)
        assert op1_start < op0_end  # overlap

    def test_all_modules_appear(self, toy_context, toy_arch):
        sim = KeySwitchModuleSim(toy_context, toy_arch)
        modules = {iv.module for iv in sim.pipeline_timeline(1)}
        assert modules == {
            "INTT0", "NTT0", "DyadMult", "DyadMult(input)", "INTT1", "NTT1", "MS"
        }

    def test_input_dyad_synchronized_with_key_dyads(self, toy_context, toy_arch):
        """Data Dependency 1: the input-poly product runs in lockstep."""
        sim = KeySwitchModuleSim(toy_context, toy_arch)
        timeline = sim.pipeline_timeline(1)
        dyad = sorted(
            (iv.start, iv.end) for iv in timeline if iv.module == "DyadMult"
        )
        dyad_in = sorted(
            (iv.start, iv.end)
            for iv in timeline
            if iv.module == "DyadMult(input)"
        )
        assert dyad == dyad_in

    def test_buffer_requirements(self, toy_context):
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-B")]
        sim = KeySwitchModuleSim(toy_context, arch)
        bufs = sim.buffer_requirements()
        assert bufs["f1_input_poly_buffers"] == 4
        assert bufs["f2_dyad_output_buffers"] == 15


class TestHoistedTiming:
    """The decompose-once model behind Evaluator.rotate_hoisted."""

    def test_single_rotation_equals_naive(self, sim):
        t = sim.hoisted_timing(1)
        assert t["hoisted_cycles_per_rotation"] == pytest.approx(
            t["naive_cycles_per_rotation"]
        )
        assert t["speedup"] == pytest.approx(1.0)

    def test_per_rotation_cost_decreases_with_fanout_amortized(self, sim):
        t1 = sim.hoisted_timing(1)
        t8 = sim.hoisted_timing(8)
        assert (
            t8["hoisted_cycles_per_rotation"] < t1["hoisted_cycles_per_rotation"]
        )
        assert t8["speedup"] > 1.0
        # amortization saturates at naive / apply-only
        limit = t8["naive_cycles_per_rotation"] / t8["apply_cycles_per_rotation"]
        assert t8["speedup"] < limit
        assert sim.hoisted_timing(512)["speedup"] == pytest.approx(
            limit, rel=0.05
        )

    def test_decompose_is_the_dominant_phase(self, sim):
        """Hoisting helps because INTT0 + NTT0 dominate Figure 5's cycles;
        the model must reflect that structure."""
        t = sim.hoisted_timing(4)
        assert t["decompose_cycles"] > 0
        assert t["apply_cycles_per_rotation"] > 0
        stats = sim.timing()
        assert t["decompose_cycles"] == pytest.approx(
            stats.stage_busy_cycles["INTT0"] + stats.stage_busy_cycles["NTT0"]
        )

    def test_rejects_zero_rotations(self, sim):
        with pytest.raises(ValueError):
            sim.hoisted_timing(0)

    def test_level_count_scales_decompose(self, sim):
        shallow = sim.hoisted_timing(4, level_count=1)
        deep = sim.hoisted_timing(4)
        assert shallow["decompose_cycles"] < deep["decompose_cycles"]
