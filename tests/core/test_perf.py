"""Performance-model tests: must reproduce Tables 7 and 8 exactly."""

import pytest

from repro.analysis.paper_data import (
    TABLE7_LOW_LEVEL,
    TABLE8_HIGH_LEVEL,
    HEADLINE_SPEEDUP_RANGE,
)
from repro.core.perf import (
    CLOCK_HZ,
    EVALUATED_CONFIGS,
    PerformanceModel,
    all_performance_models,
    dyadic_cycles,
    keyswitch_cycles,
    ntt_cycles,
)

SET_NAME = {4096: "Set-A", 8192: "Set-B", 16384: "Set-C"}


class TestCycleFormulas:
    def test_ntt_cycles_examples(self):
        assert ntt_cycles(4096, 16) == 1536
        assert ntt_cycles(8192, 16) == 3328
        assert ntt_cycles(16384, 16) == 7168

    def test_dyadic_cycles(self):
        assert dyadic_cycles(4096, 16) == 256

    def test_keyswitch_cycles(self):
        assert keyswitch_cycles(8192, 4, 16) == 13312


class TestClockFrequencies:
    def test_final_frequencies(self):
        assert CLOCK_HZ["Arria10"] == 275e6
        assert CLOCK_HZ["Stratix10"] == 300e6


@pytest.mark.parametrize("device,n,k", EVALUATED_CONFIGS)
class TestTable7:
    def test_ntt_matches(self, device, n, k):
        pm = PerformanceModel(device, n, k)
        paper = TABLE7_LOW_LEVEL[(device, SET_NAME[n])].ntt_heax
        assert pm.ntt_ops_per_sec() == pytest.approx(paper, abs=1)

    def test_intt_matches(self, device, n, k):
        pm = PerformanceModel(device, n, k)
        paper = TABLE7_LOW_LEVEL[(device, SET_NAME[n])].intt_heax
        assert pm.intt_ops_per_sec() == pytest.approx(paper, abs=1)

    def test_dyadic_matches(self, device, n, k):
        pm = PerformanceModel(device, n, k)
        paper = TABLE7_LOW_LEVEL[(device, SET_NAME[n])].dyadic_heax
        assert pm.dyadic_ops_per_sec() == pytest.approx(paper, abs=1)


@pytest.mark.parametrize("device,n,k", EVALUATED_CONFIGS)
class TestTable8:
    def test_keyswitch_matches(self, device, n, k):
        pm = PerformanceModel(device, n, k)
        paper = TABLE8_HIGH_LEVEL[(device, SET_NAME[n])].keyswitch_heax
        assert pm.keyswitch_ops_per_sec() == pytest.approx(paper, abs=1)

    def test_mult_relin_matches(self, device, n, k):
        pm = PerformanceModel(device, n, k)
        paper = TABLE8_HIGH_LEVEL[(device, SET_NAME[n])].multrelin_heax
        assert pm.mult_relin_ops_per_sec() == pytest.approx(paper, abs=1)


class TestScalability:
    def test_stratix_doubles_arria_on_set_a(self):
        """Section 6.3: the up-scaled Stratix instance gives ~2x throughput
        at the same HE parameters (2x cores + higher clock)."""
        arria = PerformanceModel("Arria10", 4096, 2)
        stratix = PerformanceModel("Stratix10", 4096, 2)
        ratio = stratix.keyswitch_ops_per_sec() / arria.keyswitch_ops_per_sec()
        assert ratio == pytest.approx(2 * 300 / 275 / 1, rel=1e-6)
        assert 2.0 < ratio < 2.4

    def test_headline_speedup_range(self):
        """Stratix speedups over CPU span the paper's 164-268x claim."""
        lo, hi = HEADLINE_SPEEDUP_RANGE
        speedups = []
        dims = {"Set-A": (4096, 2), "Set-B": (8192, 4), "Set-C": (16384, 8)}
        for (dev, ps), row in TABLE8_HIGH_LEVEL.items():
            if dev != "Stratix10":
                continue
            n, k = dims[ps]
            pm = PerformanceModel(dev, n, k)
            speedups.append(pm.keyswitch_ops_per_sec() / row.keyswitch_cpu)
            speedups.append(pm.mult_relin_ops_per_sec() / row.multrelin_cpu)
        assert min(speedups) >= lo * 0.99
        assert max(speedups) <= hi * 1.01


class TestHelpers:
    def test_all_models_cover_evaluated_configs(self):
        models = all_performance_models()
        assert len(models) == 4
        assert {(m.device, m.n) for m in models} == {
            (d, n) for d, n, _ in EVALUATED_CONFIGS
        }

    def test_rows_have_expected_keys(self):
        pm = PerformanceModel("Stratix10", 8192, 4)
        assert set(pm.low_level_row()) == {"NTT", "INTT", "Dyadic"}
        assert set(pm.high_level_row()) == {"KeySwitch", "MULT+ReLin"}
