"""Property-based tests (hypothesis) over the hardware simulators.

These are the deep invariants the reproduction rests on:

* the banked/muxed/pipelined NTT module computes *exactly* the NTT of
  Algorithm 3 for every (ring size, core count, input) combination;
* cycle counts always equal the closed-form model;
* the MULT module equals the dyadic reference for arbitrary component
  counts;
* architecture derivation always yields rate-balanced designs;
* memory layouts never lose payload bits.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.ckks.modarith import Modulus
from repro.ckks.ntt import NTTTables
from repro.ckks.primes import generate_ntt_primes
from repro.core.arch import derive_architecture
from repro.core.memory import M20K_BITS, MemoryLayout
from repro.core.mult_module import MultModuleSim
from repro.core.ntt_module import NTTModuleSim

_TABLE_CACHE = {}


def tables_for(n):
    if n not in _TABLE_CACHE:
        p = generate_ntt_primes(n, 28, 1)[0]
        _TABLE_CACHE[n] = NTTTables(n, Modulus(p))
    return _TABLE_CACHE[n]


ring_and_cores = st.sampled_from(
    [(n, nc) for n in (16, 32, 64, 128) for nc in (1, 2, 4, 8) if 2 * nc <= n]
)


class TestNttModuleProperties:
    @given(ring_and_cores, st.data())
    @settings(max_examples=60, deadline=None)
    def test_forward_equals_reference(self, cfg, data):
        n, nc = cfg
        t = tables_for(n)
        p = t.modulus.value
        poly = data.draw(st.lists(st.integers(0, p - 1), min_size=n, max_size=n))
        sim = NTTModuleSim(t, nc)
        out, stats = sim.run_forward(poly)
        assert out == t.forward(poly)
        assert stats.throughput_cycles == sim.expected_throughput_cycles()

    @given(ring_and_cores, st.data())
    @settings(max_examples=40, deadline=None)
    def test_hw_roundtrip_identity(self, cfg, data):
        n, nc = cfg
        t = tables_for(n)
        p = t.modulus.value
        poly = data.draw(st.lists(st.integers(0, p - 1), min_size=n, max_size=n))
        sim = NTTModuleSim(t, nc)
        fwd, _ = sim.run_forward(poly)
        back, _ = sim.run_inverse(fwd)
        assert back == poly

    @given(ring_and_cores)
    @settings(max_examples=30, deadline=None)
    def test_cycle_count_independent_of_data(self, cfg):
        n, nc = cfg
        t = tables_for(n)
        sim = NTTModuleSim(t, nc)
        _, s0 = sim.run_forward([0] * n)
        _, s1 = sim.run_forward([1] * n)
        assert s0.throughput_cycles == s1.throughput_cycles

    @given(ring_and_cores)
    @settings(max_examples=30, deadline=None)
    def test_mux_fanin_bound(self, cfg):
        n, nc = cfg
        sim = NTTModuleSim(tables_for(n), nc)
        assert sim.mux_fanin_report()["max_fanin"] <= math.log2(2 * nc) + 1


class TestMultModuleProperties:
    @given(
        st.sampled_from([(1, 1), (1, 2), (2, 2), (3, 2), (2, 3), (3, 3)]),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_convolution(self, shape, data):
        alpha, beta = shape
        n = 16
        p = tables_for(n).modulus.value
        sim = MultModuleSim(Modulus(p), n, 4)
        ct1 = [
            data.draw(st.lists(st.integers(0, p - 1), min_size=n, max_size=n))
            for _ in range(alpha)
        ]
        ct2 = [
            data.draw(st.lists(st.integers(0, p - 1), min_size=n, max_size=n))
            for _ in range(beta)
        ]
        outs, stats = sim.ciphertext_multiply(ct1, ct2)
        ref = [[0] * n for _ in range(alpha + beta - 1)]
        for i in range(alpha):
            for j in range(beta):
                for tdx in range(n):
                    ref[i + j][tdx] = (
                        ref[i + j][tdx] + ct1[i][tdx] * ct2[j][tdx]
                    ) % p
        assert outs == ref
        assert stats.cycles == alpha * beta * n // 4


class TestArchProperties:
    @given(
        st.sampled_from([4096, 8192, 16384]),
        st.sampled_from([2, 4, 8]),
        st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_derived_designs_balanced(self, n, k, nc_intt0):
        total = k * nc_intt0
        m0 = 1
        # choose the largest m0 dividing total with per-module cores <= 32
        for cand in (8, 4, 2, 1):
            if total % cand == 0 and total // cand <= 32:
                m0 = cand
                break
        arch = derive_architecture("prop", n, k, nc_intt0, m0)
        assert arch.throughput_balanced()
        assert arch.f1 >= 4  # quadruple buffering is the floor
        assert arch.total_ntt0_cores == k * nc_intt0

    @given(st.sampled_from([2, 4, 8]), st.sampled_from([4, 8, 16, 32]))
    @settings(max_examples=30, deadline=None)
    def test_intt1_sizing_rule(self, k, nc_intt0):
        arch = derive_architecture("prop", 8192, k, nc_intt0, 1)
        assert arch.intt1[1] == -(-nc_intt0 // k)


class TestMemoryProperties:
    @given(
        st.sampled_from([256, 512, 1024, 4096, 8192, 16384]),
        st.sampled_from([1, 2, 4, 8, 16, 32]),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_payload_loss(self, n, lanes):
        if n % lanes:
            return
        layout = MemoryLayout(n, lanes)
        assert layout.m20k_units * M20K_BITS >= layout.logical_bits
        assert 0 < layout.utilization <= 1.0

    @given(st.sampled_from([1024, 4096, 8192]))
    @settings(max_examples=20, deadline=None)
    def test_packing_beats_naive(self, n):
        """beta = 8 packing always beats one-coefficient-per-BRAM width
        utilization (the Section 4.2 claim)."""
        from repro.core.memory import naive_layout_utilization

        packed = MemoryLayout(n, 8)
        assert packed.width_utilization > naive_layout_utilization()
