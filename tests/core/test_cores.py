"""Tests for the three computation-core models (Table 3)."""

import random

import pytest

from repro.ckks.modarith import Modulus
from repro.ckks.ntt import NTTTables
from repro.ckks.primes import generate_ntt_primes
from repro.core.cores import CORE_SPECS, DyadicCore, INTTCore, NTTCore

N = 64
P = generate_ntt_primes(N, 30, 1)[0]
MOD = Modulus(P)


class TestSpecs:
    def test_table3_dyadic(self):
        spec = CORE_SPECS["dyadic"]
        assert (spec.dsp, spec.reg, spec.alm, spec.pipeline_stages) == (22, 4526, 1663, 23)

    def test_table3_ntt(self):
        spec = CORE_SPECS["ntt"]
        assert (spec.dsp, spec.reg, spec.alm, spec.pipeline_stages) == (10, 6297, 2066, 50)

    def test_table3_intt(self):
        spec = CORE_SPECS["intt"]
        assert (spec.dsp, spec.reg, spec.alm, spec.pipeline_stages) == (10, 5449, 2119, 49)

    def test_ntt_core_uses_fewer_dsp_than_dyadic(self):
        # one MulRed vs a full modular multiply datapath
        assert CORE_SPECS["ntt"].dsp < CORE_SPECS["dyadic"].dsp


class TestDyadicCore:
    def test_compute(self):
        core = DyadicCore(MOD)
        rng = random.Random(0)
        for _ in range(50):
            a, b = rng.randrange(P), rng.randrange(P)
            assert core.compute(a, b) == a * b % P

    def test_compute_with_ratio(self):
        core = DyadicCore(MOD)
        c = MOD.mulred_constant(123456 % P)
        assert core.compute_with_ratio(7, c) == 7 * c.value % P


class TestButterflies:
    def test_ntt_butterfly_formula(self):
        core = NTTCore(MOD)
        tables = NTTTables(N, MOD)
        w = tables.root_powers[1]
        a, b = 5, 9
        hi, lo = core.butterfly(a, b, w)
        assert hi == (a + w.value * b) % P
        assert lo == (a - w.value * b) % P

    def test_intt_butterfly_inverts_ntt_butterfly(self):
        ntt = NTTCore(MOD)
        intt = INTTCore(MOD)
        tables = NTTTables(N, MOD)
        rng = random.Random(1)
        for idx in (1, 2, 3, N // 2, N - 1):
            w = tables.root_powers[idx]
            w_inv_div2 = MOD.mulred_constant(
                MOD.mul(MOD.inv(w.value), MOD.inv(2))
            )
            a, b = rng.randrange(P), rng.randrange(P)
            u, v = ntt.butterfly(a, b, w)
            a2, b2 = intt.butterfly(u, v, w_inv_div2)
            assert (a2, b2) == (a, b)

    def test_whole_transform_through_cores(self):
        """Chaining core butterflies stage by stage reproduces NTTTables."""
        tables = NTTTables(N, MOD)
        core = NTTCore(MOD)
        rng = random.Random(2)
        a = [rng.randrange(P) for _ in range(N)]
        data = list(a)
        t, m = N, 1
        while m < N:
            t >>= 1
            for i in range(m):
                w = tables.root_powers[m + i]
                for j in range(2 * i * t, 2 * i * t + t):
                    data[j], data[j + t] = core.butterfly(data[j], data[j + t], w)
            m <<= 1
        assert data == tables.forward(a)
