"""Tests for the cycle-accurate NTT/INTT module simulator (Section 4.2)."""

import random

import pytest

from repro.ckks.modarith import Modulus
from repro.ckks.ntt import NTTTables
from repro.ckks.primes import generate_ntt_primes
from repro.core.ntt_module import NTTModuleSim

N = 256
P = generate_ntt_primes(N, 30, 1)[0]


@pytest.fixture(scope="module")
def tables():
    return NTTTables(N, Modulus(P))


def rand_poly(seed, n=N, p=P):
    rng = random.Random(seed)
    return [rng.randrange(p) for _ in range(n)]


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("nc", [1, 2, 4, 8, 16])
    def test_forward_matches_reference(self, tables, nc):
        sim = NTTModuleSim(tables, nc)
        a = rand_poly(nc)
        out, _ = sim.run_forward(a)
        assert out == tables.forward(a)

    @pytest.mark.parametrize("nc", [1, 2, 4, 8, 16])
    def test_inverse_matches_reference(self, tables, nc):
        sim = NTTModuleSim(tables, nc)
        a = rand_poly(100 + nc)
        out, _ = sim.run_inverse(a)
        assert out == tables.inverse(a)

    def test_roundtrip_through_hardware(self, tables):
        sim = NTTModuleSim(tables, 8)
        a = rand_poly(3)
        fwd, _ = sim.run_forward(a)
        back, _ = sim.run_inverse(fwd)
        assert back == a

    def test_input_length_checked(self, tables):
        sim = NTTModuleSim(tables, 4)
        with pytest.raises(ValueError):
            sim.run_forward([0] * (N - 1))


class TestCycleAccounting:
    @pytest.mark.parametrize("nc", [2, 4, 8, 16])
    def test_throughput_formula(self, tables, nc):
        """Simulated cycles == n log n / (2 nc) (the paper's formula)."""
        sim = NTTModuleSim(tables, nc)
        _, stats = sim.run_forward(rand_poly(nc + 50))
        assert stats.throughput_cycles == sim.expected_throughput_cycles()

    def test_inverse_same_cycles(self, tables):
        sim = NTTModuleSim(tables, 8)
        _, f = sim.run_forward(rand_poly(1))
        _, i = sim.run_inverse(rand_poly(2))
        assert f.throughput_cycles == i.throughput_cycles

    def test_stage_type_split(self, tables):
        """First log n - log nc - 1 stages are Type 1 (Section 4.2)."""
        nc = 8
        sim = NTTModuleSim(tables, nc)
        _, stats = sim.run_forward(rand_poly(4))
        log_n = N.bit_length() - 1
        log_nc = nc.bit_length() - 1
        assert stats.type1_stage_count == log_n - log_nc - 1
        assert stats.type2_stage_count == log_nc + 1

    def test_latency_includes_pipeline_fill(self, tables):
        sim = NTTModuleSim(tables, 8)
        _, stats = sim.run_forward(rand_poly(5))
        assert stats.latency_cycles == stats.throughput_cycles + 50  # Table 3

    def test_basic_pipeline_slower(self, tables):
        """The unoptimized pipeline doubles Type-1 stage time (Figure 4)."""
        sim = NTTModuleSim(tables, 8)
        _, stats = sim.run_forward(rand_poly(6))
        per_stage = N // (2 * 8)
        expected = (
            stats.type1_stage_count * 2 * per_stage
            + stats.type2_stage_count * per_stage
        )
        assert stats.basic_pipeline_cycles == expected
        assert stats.basic_pipeline_cycles > stats.throughput_cycles

    def test_memory_access_counts_balance(self, tables):
        """Every ME read is matched by exactly one write (in-place stages)."""
        sim = NTTModuleSim(tables, 8)
        _, stats = sim.run_forward(rand_poly(7))
        for s in stats.stages:
            assert s.me_reads == s.me_writes


class TestAccessPatterns:
    def test_trace_records_type1_pairs(self, tables):
        sim = NTTModuleSim(tables, 8, record_trace=True)
        sim.run_forward(rand_poly(8))
        type1 = [e for e in sim.trace if e.stage_type == 1]
        assert type1, "expected Type-1 events"
        for e in type1:
            assert len(e.me_addresses) == 2
            a, b = e.me_addresses
            assert b > a  # partner ME strictly later in memory

    def test_trace_records_type2_single_me(self, tables):
        sim = NTTModuleSim(tables, 8, record_trace=True)
        sim.run_forward(rand_poly(9))
        type2 = [e for e in sim.trace if e.stage_type == 2]
        assert type2
        for e in type2:
            assert len(e.me_addresses) == 1

    def test_first_stage_partner_distance(self, tables):
        """Stage 0 pairs x[j] with x[j + n/2] (the Figure 2 pattern)."""
        sim = NTTModuleSim(tables, 8, record_trace=True)
        sim.run_forward(rand_poly(10))
        stage0 = [e for e in sim.trace if e.stage == 0]
        W = sim.me_width
        for e in stage0:
            a, b = e.me_addresses
            assert (b - a) * W == N // 2

    def test_every_me_visited_every_stage(self, tables):
        sim = NTTModuleSim(tables, 4, record_trace=True)
        sim.run_forward(rand_poly(11))
        log_n = N.bit_length() - 1
        for stage in range(log_n):
            visited = set()
            for e in sim.trace:
                if e.stage == stage:
                    visited.update(e.me_addresses)
            assert visited == set(range(sim.depth))


class TestMuxNetwork:
    @pytest.mark.parametrize("nc", [2, 4, 8, 16, 32])
    def test_fanin_bounded_by_log(self, nc):
        """Customized MUXes need <= log2(2 nc) inputs (Section 4.2)."""
        n = max(4 * nc, 64)
        p = generate_ntt_primes(n, 30, 1)[0]
        sim = NTTModuleSim(NTTTables(n, Modulus(p)), nc)
        report = sim.mux_fanin_report()
        import math

        assert report["max_fanin"] <= math.log2(2 * nc) + 1
        assert report["max_fanin"] < report["naive_crossbar_inputs"]

    def test_total_mux_inputs_subquadratic(self):
        """Total MUX inputs grow O(nc log nc), not O(nc^2)."""
        sizes = {}
        for nc in (4, 8, 16):
            n = 64 * nc
            p = generate_ntt_primes(n, 30, 1)[0]
            sim = NTTModuleSim(NTTTables(n, Modulus(p)), nc)
            sizes[nc] = sim.mux_fanin_report()["total_mux_inputs"]
        # doubling nc should grow total inputs by < 4x (quadratic would be 4x)
        assert sizes[8] < 3 * sizes[4]
        assert sizes[16] < 3 * sizes[8]

    def test_type2_sources_are_valid_pairs(self, tables):
        sim = NTTModuleSim(tables, 8)
        for t in (1, 2, 4):
            for la, lb in sim.type2_core_sources(t):
                assert lb - la == t
                assert 0 <= la < sim.me_width
                assert lb < sim.me_width


class TestConstruction:
    def test_rejects_non_power_of_two_cores(self, tables):
        with pytest.raises(ValueError):
            NTTModuleSim(tables, 3)

    def test_rejects_too_many_cores(self, tables):
        with pytest.raises(ValueError):
            NTTModuleSim(tables, N)

    def test_describe_mentions_core_count(self, tables):
        assert "8 cores" in NTTModuleSim(tables, 8).describe()
