"""Cross-package integration tests: CKKS x hardware x system.

These exercise whole paths a downstream user would run: deep encrypted
pipelines, hardware-simulated rotation/relinearization feeding back into
software decryption, and end-to-end workload projections.
"""

import numpy as np
import pytest

from repro.ckks.context import CkksContext, toy_parameters
from repro.ckks.decryptor import Decryptor
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.poly import Ciphertext
from repro.core.accelerator import HeaxAccelerator
from repro.core.arch import TABLE5_ARCHITECTURES
from repro.core.keyswitch_module import KeySwitchModuleSim
from repro.system.workload import RuntimeProjection, WorkloadGenerator


@pytest.fixture(scope="module")
def deep_stack():
    ctx = CkksContext(toy_parameters(n=128, k=4, prime_bits=30))
    kg = KeyGenerator(ctx, seed=31)
    return {
        "ctx": ctx,
        "keygen": kg,
        "encoder": CkksEncoder(ctx),
        "encryptor": Encryptor(ctx, kg.public_key(), seed=32),
        "decryptor": Decryptor(ctx, kg.secret_key),
        "evaluator": Evaluator(ctx),
        "relin": kg.relin_key(),
    }


class TestDeepPipelines:
    def test_depth_three_chain(self, deep_stack):
        """((x*y)*z)*w across three rescales -- uses the full chain."""
        s = deep_stack
        rng = np.random.default_rng(7)
        vecs = [rng.uniform(0.5, 1.5, 4) for _ in range(4)]
        cts = [s["encryptor"].encrypt(s["encoder"].encode(v)) for v in vecs]
        acc = cts[0]
        for ct in cts[1:]:
            # re-encode operand at acc's level by aligning the fresh ct
            ev = s["evaluator"]
            while ct.level_count > acc.level_count:
                ct = ev.rescale(
                    ev.multiply_plain(
                        ct, s["encoder"].encode(1.0, level_count=ct.level_count)
                    )
                )
            acc = ev.rescale(ev.relinearize(ev.multiply(acc, ct), s["relin"]))
        out = s["encoder"].decode(s["decryptor"].decrypt(acc)).real[:4]
        expected = vecs[0] * vecs[1] * vecs[2] * vecs[3]
        assert np.allclose(out, expected, atol=0.1)

    def test_sum_of_products(self, deep_stack):
        """sum_i x_i * y_i with relinearized, rescaled products."""
        s = deep_stack
        ev = s["evaluator"]
        rng = np.random.default_rng(8)
        total = None
        expected = np.zeros(4)
        for i in range(3):
            x, y = rng.uniform(-1, 1, 4), rng.uniform(-1, 1, 4)
            expected += x * y
            cx = s["encryptor"].encrypt(s["encoder"].encode(x))
            cy = s["encryptor"].encrypt(s["encoder"].encode(y))
            prod = ev.rescale(ev.relinearize(ev.multiply(cx, cy), s["relin"]))
            total = prod if total is None else ev.add(total, prod)
        out = s["encoder"].decode(s["decryptor"].decrypt(total)).real[:4]
        assert np.allclose(out, expected, atol=0.05)


class TestHardwareSoftwareLoop:
    def test_hardware_relin_decrypts_correctly(self, deep_stack):
        """A product relinearized *through the hardware simulator* must
        decrypt to the right values with the software decryptor."""
        s = deep_stack
        ctx = s["ctx"]
        arch = TABLE5_ARCHITECTURES[("Stratix10", "Set-B")]
        accel = HeaxAccelerator("Stratix10", "Set-B", context=ctx)
        x = np.array([1.5, -0.5, 2.0, 0.25])
        y = np.array([2.0, 3.0, -1.0, 4.0])
        cx = s["encryptor"].encrypt(s["encoder"].encode(x))
        cy = s["encryptor"].encrypt(s["encoder"].encode(y))
        prod = s["evaluator"].multiply(cx, cy)
        (f0, f1), stats = accel.execute_keyswitch(prod.polys[2], s["relin"])
        hw_ct = Ciphertext(
            [prod.polys[0].add(f0), prod.polys[1].add(f1)], prod.scale
        )
        out = s["encoder"].decode(s["decryptor"].decrypt(hw_ct)).real[:4]
        assert np.allclose(out, x * y, atol=0.05)
        assert stats.throughput_cycles > 0

    def test_hardware_rotation_matches_software(self, deep_stack):
        """Rotation via the KeySwitch module == the evaluator's keyswitch.

        The module mirrors Figure 5 literally: automorphism first, then
        one key switch of the rotated ``c1`` -- so it is compared bitwise
        against the evaluator's matching dataflow
        (``keyswitch_polynomial`` on the rotated polynomial).  The
        evaluator's production rotation permutes the *decomposed digits*
        instead (the hoisting-ready centered gadget representative), so
        that path is checked at the decryption level, where both are the
        same rotation.
        """
        s = deep_stack
        ctx = s["ctx"]
        kg = s["keygen"]
        ev = s["evaluator"]
        elt = ctx.galois_element_for_step(1)
        gk = kg.galois_key(elt)
        vals = np.arange(8, dtype=float) / 4
        ct = s["encryptor"].encrypt(s["encoder"].encode(vals))
        # software path with the module's dataflow: automorphism, then
        # keyswitch of the rotated c1
        rotated = ev._apply_galois_ct(ct, elt)
        f0s, f1s = ev.keyswitch_polynomial(rotated.polys[1], gk)
        sw = Ciphertext([rotated.polys[0].add(f0s), f1s], ct.scale)
        # hardware path: same automorphism, keyswitch through the module
        sim = KeySwitchModuleSim(ctx, TABLE5_ARCHITECTURES[("Stratix10", "Set-B")])
        (f0, f1), _ = sim.run(rotated.polys[1], gk)
        hw = Ciphertext([rotated.polys[0].add(f0), f1], ct.scale)
        assert hw.polys[0] == sw.polys[0]
        assert hw.polys[1] == sw.polys[1]
        # the digit-permuting production rotation decrypts identically
        hoisted = ev.apply_galois(ct, elt, gk)
        out_hw = s["encoder"].decode(s["decryptor"].decrypt(hw)).real[:8]
        out_ho = s["encoder"].decode(s["decryptor"].decrypt(hoisted)).real[:8]
        np.testing.assert_allclose(out_hw, out_ho, atol=1e-2)


class TestWorkloadProjectionLoop:
    def test_inference_projection_consistent_with_table8_regime(self):
        """A rotation-dominated workload's speedup approaches the Table 8
        KeySwitch speedup for the same configuration."""
        proj = RuntimeProjection("Stratix10", 8192, 4)
        w = WorkloadGenerator.matvec(256)
        s = proj.speedup(w)
        assert 100 < s < 400

    def test_projection_scales_linearly_in_batch(self):
        proj = RuntimeProjection("Stratix10", 4096, 2)
        w = WorkloadGenerator.logistic_inference(64)
        one = proj.heax_seconds(w)
        ten = proj.heax_seconds(w.scaled(10))
        assert ten == pytest.approx(10 * one, rel=1e-9)

    def test_all_configs_project(self):
        w = WorkloadGenerator.dense_layer(32)
        for device, n, k in [
            ("Arria10", 4096, 2),
            ("Stratix10", 4096, 2),
            ("Stratix10", 8192, 4),
            ("Stratix10", 16384, 8),
        ]:
            proj = RuntimeProjection(device, n, k)
            assert proj.heax_seconds(w) > 0
            assert proj.speedup(w) > 10
