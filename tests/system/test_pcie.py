"""Tests for the PCIe transfer model (Section 5.2)."""

import pytest

from repro.system.pcie import PcieModel, ciphertext_bytes, polynomial_bytes


@pytest.fixture(scope="module")
def pcie():
    return PcieModel(peak_bytes_per_sec=15.75e9)  # Board-B


class TestRequestModel:
    def test_request_time_has_setup_floor(self, pcie):
        tiny = pcie.request_time(64)
        assert tiny >= pcie.setup_seconds

    def test_request_time_scales_with_size(self, pcie):
        assert pcie.request_time(1 << 20) > pcie.request_time(1 << 12)

    def test_rejects_empty_message(self, pcie):
        with pytest.raises(ValueError):
            pcie.request_time(0)


class TestEffectiveBandwidth:
    def test_polynomial_messages_reach_90_percent(self, pcie):
        """The paper's design point: >= one polynomial (2^15-2^17 B) per
        request, eight threads -> near-peak throughput."""
        for n in (4096, 8192, 16384):
            util = pcie.utilization(polynomial_bytes(n), threads=8)
            assert util > 0.90

    def test_small_messages_waste_bandwidth(self, pcie):
        assert pcie.utilization(4096, threads=1) < 0.40

    def test_more_threads_help(self, pcie):
        one = pcie.effective_bandwidth(polynomial_bytes(4096), threads=1)
        eight = pcie.effective_bandwidth(polynomial_bytes(4096), threads=8)
        assert eight > one

    def test_bandwidth_capped_at_peak(self, pcie):
        assert pcie.effective_bandwidth(1 << 24, threads=8) <= pcie.peak_bytes_per_sec


class TestTransferTime:
    def test_bulk_transfer_is_bandwidth_bound(self, pcie):
        total = 64 * polynomial_bytes(8192)
        t = pcie.transfer_time(total, polynomial_bytes(8192), threads=8)
        assert t >= total / pcie.peak_bytes_per_sec
        assert t < 2 * total / pcie.peak_bytes_per_sec + 1e-3

    def test_thread_floor(self, pcie):
        with pytest.raises(ValueError):
            pcie.transfer_time(1 << 20, 1 << 16, threads=0)


class TestSizes:
    def test_polynomial_bytes_paper_range(self):
        """Polynomials are 2^15 to 2^17 bytes across Set-A..C."""
        assert polynomial_bytes(4096) == 1 << 15
        assert polynomial_bytes(16384) == 1 << 17

    def test_ciphertext_bytes(self):
        assert ciphertext_bytes(4096, components=2, rns_count=3) == 2 * 3 * (1 << 15)
