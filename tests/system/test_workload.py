"""Tests for workload generation and runtime projection."""

import pytest

from repro.system.workload import (
    PRIMITIVES,
    RuntimeProjection,
    Workload,
    WorkloadGenerator,
)


class TestWorkload:
    def test_defaults_zero(self):
        w = Workload("w", {"keyswitch": 3})
        assert w.counts["cc_mult"] == 0
        assert w.total_ops == 3

    def test_rejects_unknown_primitive(self):
        with pytest.raises(ValueError):
            Workload("w", {"bootstrapping": 1})

    def test_addition_merges(self):
        a = Workload("a", {"keyswitch": 1})
        b = Workload("b", {"keyswitch": 2, "add": 5})
        c = a + b
        assert c.counts["keyswitch"] == 3
        assert c.counts["add"] == 5

    def test_scaling(self):
        w = WorkloadGenerator.dot_product(8).scaled(10)
        assert w.counts["keyswitch"] == 30  # 3 rotations x 10


class TestGenerator:
    def test_dot_product_counts(self):
        w = WorkloadGenerator.dot_product(8)
        assert w.counts["keyswitch"] == 3  # log2(8) rotations
        assert w.counts["cp_mult"] == 1

    def test_matvec_counts(self):
        w = WorkloadGenerator.matvec(16)
        assert w.counts["keyswitch"] == 15
        assert w.counts["cp_mult"] == 16

    def test_polynomial_activation(self):
        w = WorkloadGenerator.polynomial_activation(3)
        assert w.counts["cc_mult"] == 2
        assert w.counts["keyswitch"] == 2

    def test_activation_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            WorkloadGenerator.polynomial_activation(0)

    def test_logistic_composition(self):
        dot = WorkloadGenerator.dot_product(8)
        act = WorkloadGenerator.polynomial_activation(3)
        full = WorkloadGenerator.logistic_inference(8, 3)
        for p in PRIMITIVES:
            assert full.counts[p] == dot.counts[p] + act.counts[p]

    def test_dense_layer(self):
        w = WorkloadGenerator.dense_layer(8)
        assert w.counts["keyswitch"] >= 8  # rotations + relins


class TestProjection:
    @pytest.fixture(scope="class")
    def proj(self):
        return RuntimeProjection("Stratix10", 8192, 4)

    def test_speedup_two_orders(self, proj):
        w = WorkloadGenerator.logistic_inference(64)
        assert proj.speedup(w) > 50

    def test_keyswitch_dominates_heax_time(self, proj):
        """Rotation-heavy workloads are KeySwitch-pipeline bound."""
        w = WorkloadGenerator.matvec(64)
        ks_only = Workload("ks", {"keyswitch": w.counts["keyswitch"]})
        assert proj.heax_seconds(w) == pytest.approx(
            proj.heax_seconds(ks_only), rel=0.25
        )

    def test_cpu_time_additive(self, proj):
        a = WorkloadGenerator.dot_product(8)
        b = WorkloadGenerator.polynomial_activation(2)
        assert proj.cpu_seconds(a + b) == pytest.approx(
            proj.cpu_seconds(a) + proj.cpu_seconds(b)
        )

    def test_bigger_workload_takes_longer(self, proj):
        small = WorkloadGenerator.matvec(8)
        big = WorkloadGenerator.matvec(64)
        assert proj.heax_seconds(big) > proj.heax_seconds(small)
        assert proj.cpu_seconds(big) > proj.cpu_seconds(small)

    def test_report_row_shape(self, proj):
        row = proj.report_row(WorkloadGenerator.dot_product(8))
        assert len(row) == 6
        assert row[0] == "dot-8"


class TestOpSequence:
    def test_round_robin_interleaving(self):
        w = Workload("w", {"keyswitch": 2, "cc_mult": 1, "add": 3})
        seq = w.op_sequence()
        assert len(seq) == w.total_ops
        assert seq[:3] == ["keyswitch", "cc_mult", "add"]
        # every count is fully emitted
        for p in PRIMITIVES:
            assert seq.count(p) == w.counts[p]

    def test_empty_workload(self):
        assert Workload("empty").op_sequence() == []


class TestBatchExecution:
    """The runner really executes workloads via BatchEvaluator."""

    @pytest.fixture(scope="class")
    def context(self):
        from repro.ckks.context import CkksContext, toy_parameters

        return CkksContext(toy_parameters(n=64, k=3, prime_bits=30))

    def test_executes_every_primitive(self, context):
        from repro.system.workload import BatchWorkloadRunner

        w = WorkloadGenerator.logistic_inference(8, 3)
        runner = BatchWorkloadRunner(context, batch_size=2, seed=5)
        report = runner.execute(w)
        assert report.op_count == w.total_ops
        assert report.batch_size == 2
        assert report.compute_seconds > 0
        assert report.ciphertext_ops_per_second > 0
        executed = [e.primitive for e in report.executed]
        for p in PRIMITIVES:
            assert executed.count(p) == w.counts[p]

    def test_scheduled_ops_carry_measured_times(self, context):
        from repro.system.workload import BatchWorkloadRunner

        w = WorkloadGenerator.dot_product(4)
        runner = BatchWorkloadRunner(context, batch_size=3, seed=6)
        report = runner.execute(w)
        ops = report.scheduled_ops()
        assert len(ops) == w.total_ops
        assert all(op.compute_seconds > 0 for op in ops)
        assert all(op.input_bytes > 0 for op in ops)
        # keyswitch ops must be tagged for quadruple buffering
        kinds = {e.primitive: e.scheduled.kind for e in report.executed}
        assert kinds["keyswitch"] == "keyswitch"
        assert kinds["rescale"] == "ntt"

    def test_host_scheduler_consumes_execution(self, context):
        from repro.system.pcie import PcieModel, polynomial_bytes
        from repro.system.scheduler import HostScheduler
        from repro.system.workload import BatchWorkloadRunner

        w = WorkloadGenerator.polynomial_activation(2)
        runner = BatchWorkloadRunner(context, batch_size=2, seed=7)
        report = runner.execute(w)
        scheduler = HostScheduler(
            PcieModel(peak_bytes_per_sec=15.75e9),
            message_bytes=polynomial_bytes(64),
        )
        sched_report = scheduler.run_executed(report)
        assert sched_report.ops == report.op_count
        assert sched_report.total_seconds >= report.compute_seconds

    def test_cross_backend_execution_bit_identical(self):
        """The executed stream ends in the same ciphertexts on every
        backend -- the system layer inherits the backend contract."""
        from repro.ckks.backend import available_backends, use_backend
        from repro.ckks.context import CkksContext, toy_parameters
        from repro.system.workload import BatchWorkloadRunner

        if "numpy" not in available_backends():
            pytest.skip("numpy backend unavailable")
        w = WorkloadGenerator.logistic_inference(4, 2)

        def run(backend):
            with use_backend(backend):
                ctx = CkksContext(toy_parameters(n=64, k=3, prime_bits=30))
                runner = BatchWorkloadRunner(ctx, batch_size=2, seed=11)
                runner.execute(w)
                return runner.decrypted_rows()

        assert run("numpy") == run("reference")

    def test_batch_size_must_be_positive(self, context):
        from repro.system.workload import BatchWorkloadRunner

        with pytest.raises(ValueError):
            BatchWorkloadRunner(context, batch_size=0)

    def test_rescale_on_single_level_chain_rejected_up_front(self):
        from repro.ckks.context import CkksContext, toy_parameters
        from repro.system.workload import BatchWorkloadRunner

        ctx = CkksContext(toy_parameters(n=64, k=1, prime_bits=30))
        runner = BatchWorkloadRunner(ctx, batch_size=2, seed=13)
        with pytest.raises(ValueError, match="single-level"):
            runner.execute(Workload("w", {"rescale": 1, "add": 1}))
