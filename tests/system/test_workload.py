"""Tests for workload generation and runtime projection."""

import pytest

from repro.system.workload import (
    PRIMITIVES,
    RuntimeProjection,
    Workload,
    WorkloadGenerator,
)


class TestWorkload:
    def test_defaults_zero(self):
        w = Workload("w", {"keyswitch": 3})
        assert w.counts["cc_mult"] == 0
        assert w.total_ops == 3

    def test_rejects_unknown_primitive(self):
        with pytest.raises(ValueError):
            Workload("w", {"bootstrapping": 1})

    def test_addition_merges(self):
        a = Workload("a", {"keyswitch": 1})
        b = Workload("b", {"keyswitch": 2, "add": 5})
        c = a + b
        assert c.counts["keyswitch"] == 3
        assert c.counts["add"] == 5

    def test_scaling(self):
        w = WorkloadGenerator.dot_product(8).scaled(10)
        assert w.counts["keyswitch"] == 30  # 3 rotations x 10


class TestGenerator:
    def test_dot_product_counts(self):
        w = WorkloadGenerator.dot_product(8)
        assert w.counts["keyswitch"] == 3  # log2(8) rotations
        assert w.counts["cp_mult"] == 1

    def test_matvec_counts(self):
        w = WorkloadGenerator.matvec(16)
        assert w.counts["keyswitch"] == 15
        assert w.counts["cp_mult"] == 16

    def test_polynomial_activation(self):
        w = WorkloadGenerator.polynomial_activation(3)
        assert w.counts["cc_mult"] == 2
        assert w.counts["keyswitch"] == 2

    def test_activation_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            WorkloadGenerator.polynomial_activation(0)

    def test_logistic_composition(self):
        dot = WorkloadGenerator.dot_product(8)
        act = WorkloadGenerator.polynomial_activation(3)
        full = WorkloadGenerator.logistic_inference(8, 3)
        for p in PRIMITIVES:
            assert full.counts[p] == dot.counts[p] + act.counts[p]

    def test_dense_layer(self):
        w = WorkloadGenerator.dense_layer(8)
        assert w.counts["keyswitch"] >= 8  # rotations + relins


class TestProjection:
    @pytest.fixture(scope="class")
    def proj(self):
        return RuntimeProjection("Stratix10", 8192, 4)

    def test_speedup_two_orders(self, proj):
        w = WorkloadGenerator.logistic_inference(64)
        assert proj.speedup(w) > 50

    def test_keyswitch_dominates_heax_time(self, proj):
        """Rotation-heavy workloads are KeySwitch-pipeline bound."""
        w = WorkloadGenerator.matvec(64)
        ks_only = Workload("ks", {"keyswitch": w.counts["keyswitch"]})
        assert proj.heax_seconds(w) == pytest.approx(
            proj.heax_seconds(ks_only), rel=0.25
        )

    def test_cpu_time_additive(self, proj):
        a = WorkloadGenerator.dot_product(8)
        b = WorkloadGenerator.polynomial_activation(2)
        assert proj.cpu_seconds(a + b) == pytest.approx(
            proj.cpu_seconds(a) + proj.cpu_seconds(b)
        )

    def test_bigger_workload_takes_longer(self, proj):
        small = WorkloadGenerator.matvec(8)
        big = WorkloadGenerator.matvec(64)
        assert proj.heax_seconds(big) > proj.heax_seconds(small)
        assert proj.cpu_seconds(big) > proj.cpu_seconds(small)

    def test_report_row_shape(self, proj):
        row = proj.report_row(WorkloadGenerator.dot_product(8))
        assert len(row) == 6
        assert row[0] == "dot-8"
