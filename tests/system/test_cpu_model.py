"""Tests for the calibrated SEAL-on-CPU cost model."""

import pytest

from repro.analysis.paper_data import TABLE7_LOW_LEVEL, TABLE8_HIGH_LEVEL
from repro.system.cpu_model import SealCpuModel

DIMS = {"Set-A": (4096, 2), "Set-B": (8192, 4), "Set-C": (16384, 8)}


@pytest.fixture(scope="module")
def cpu():
    return SealCpuModel()


class TestCalibration:
    def test_constants_in_plausible_range(self, cpu):
        """~2.7 ns per NTT butterfly unit, ~6.6 ns per dyadic coefficient
        on the 1.8 GHz Xeon -- a few cycles each."""
        assert 2.0 < cpu.ntt_ns_per_unit < 3.5
        assert 2.0 < cpu.intt_ns_per_unit < 3.5
        assert 5.0 < cpu.dyadic_ns_per_coeff < 8.0

    @pytest.mark.parametrize("ps", sorted(DIMS))
    def test_table7_primitives_within_5_percent(self, cpu, ps):
        n, _ = DIMS[ps]
        paper = TABLE7_LOW_LEVEL[("Stratix10", ps)]
        row = cpu.low_level_row(n)
        assert row["NTT"] == pytest.approx(paper.ntt_cpu, rel=0.05)
        assert row["INTT"] == pytest.approx(paper.intt_cpu, rel=0.05)
        assert row["Dyadic"] == pytest.approx(paper.dyadic_cpu, rel=0.05)


class TestComposedOperations:
    @pytest.mark.parametrize("ps", sorted(DIMS))
    def test_table8_keyswitch_within_20_percent(self, cpu, ps):
        """Composed KeySwitch cost tracks the measured CPU rate: the
        paper's Table 8 numbers are consistent with its own Table 7."""
        n, k = DIMS[ps]
        paper = TABLE8_HIGH_LEVEL[("Stratix10", ps)]
        model = cpu.high_level_row(n, k)
        assert model["KeySwitch"] == pytest.approx(paper.keyswitch_cpu, rel=0.20)
        assert model["MULT+ReLin"] == pytest.approx(paper.multrelin_cpu, rel=0.20)

    def test_keyswitch_dominates_mult(self, cpu):
        """MULT+ReLin is barely slower than KeySwitch alone."""
        n, k = 8192, 4
        ks = cpu.keyswitch_seconds(n, k)
        mr = cpu.mult_relin_seconds(n, k)
        assert ks < mr < 1.25 * ks

    def test_keyswitch_scales_superlinearly_in_k(self, cpu):
        """k*k NTT terms: doubling k more than doubles the time."""
        t1 = cpu.keyswitch_seconds(8192, 2)
        t2 = cpu.keyswitch_seconds(8192, 4)
        assert t2 > 2.5 * t1

    def test_rescale_cheaper_than_keyswitch(self, cpu):
        assert cpu.rescale_seconds(8192, 4) < cpu.keyswitch_seconds(8192, 4) / 3


class TestSpeedupShape:
    def test_speedup_ordering_matches_paper(self, cpu):
        """HEAX/CPU speedups: Set-B > Set-A > Set-C on KeySwitch
        (Table 8's non-monotonic shape)."""
        from repro.core.perf import PerformanceModel

        speedups = {}
        for ps, (n, k) in DIMS.items():
            heax = PerformanceModel("Stratix10", n, k).keyswitch_ops_per_sec()
            cpu_rate = 1.0 / cpu.keyswitch_seconds(n, k)
            speedups[ps] = heax / cpu_rate
        assert speedups["Set-B"] > speedups["Set-A"]
        assert speedups["Set-B"] > speedups["Set-C"]

    def test_two_orders_of_magnitude(self, cpu):
        from repro.core.perf import PerformanceModel

        for ps, (n, k) in DIMS.items():
            heax = PerformanceModel("Stratix10", n, k).keyswitch_ops_per_sec()
            ratio = heax * cpu.keyswitch_seconds(n, k)
            assert ratio > 100
