"""Tests for the DRAM model and the Section 5.1 ksk-streaming plan."""

import pytest

from repro.analysis.paper_data import SECTION5_KSK_STREAMING
from repro.system.dram import (
    DramModel,
    KskStreamingPlan,
    ksk_growth_bits,
    twiddle_growth_bits,
)


@pytest.fixture(scope="module")
def board_b_dram():
    return DramModel(channels=4)


class TestDramModel:
    def test_peak_bandwidth(self, board_b_dram):
        assert board_b_dram.peak_bytes_per_sec == 64e9

    def test_burst_beats_random(self, board_b_dram):
        assert board_b_dram.streaming_bandwidth() > 4 * board_b_dram.random_bandwidth()

    def test_stream_time(self, board_b_dram):
        t = board_b_dram.stream_time(int(60e9))
        assert t == pytest.approx(60e9 / board_b_dram.streaming_bandwidth())


class TestKskStreamingPlan:
    @pytest.fixture(scope="class")
    def plan(self):
        s = SECTION5_KSK_STREAMING
        return KskStreamingPlan(
            n=s["n"], k=s["k"], keyswitch_ops_per_sec=2616, word_bits=s["word_bits"]
        )

    def test_paper_151_megabits(self, plan):
        """2 x k(k+1) x n x 64 bits = ~151 Mb per KeySwitch."""
        assert plan.bits_per_keyswitch / 1e6 == pytest.approx(151, rel=0.01)

    def test_paper_383_microseconds(self, plan):
        assert plan.budget_seconds * 1e6 == pytest.approx(383, rel=0.01)

    def test_paper_49_28_gbps_requirement(self, plan):
        assert plan.required_bytes_per_sec / 1e9 == pytest.approx(49.28, rel=0.01)

    def test_feasible_on_four_channels(self, plan, board_b_dram):
        assert plan.feasible(board_b_dram)

    def test_infeasible_on_two_channels(self, plan):
        """Board-A's two channels could not stream Set-C keys."""
        assert not plan.feasible(DramModel(channels=2))

    def test_summary_keys(self, plan, board_b_dram):
        s = plan.summary(board_b_dram)
        assert set(s) == {
            "megabits_per_keyswitch",
            "budget_us",
            "required_gbps",
            "available_gbps",
            "feasible",
        }


class TestGrowthRates:
    def test_ksk_grows_faster_than_twiddles(self):
        """The paper's argument for putting ksk (not twiddles) in DRAM."""
        ratios = []
        for n, k in [(4096, 2), (8192, 4), (16384, 8)]:
            ratios.append(ksk_growth_bits(n, k) / twiddle_growth_bits(n, k))
        assert ratios == sorted(ratios)  # monotonically increasing
        assert ratios[-1] > ratios[0] * 3

    def test_ksk_growth_formula(self):
        assert ksk_growth_bits(16384, 8) == 8 * 2 * 9 * 16384 * 54

    def test_roughly_cubic_growth(self):
        """k ~ n/2048 across the paper's sets, so ksk ~ O(n^3)-ish."""
        small = ksk_growth_bits(4096, 2)
        large = ksk_growth_bits(16384, 8)
        assert large / small == pytest.approx((16384 / 4096) ** 2 * (9 / 3), rel=0.01)
