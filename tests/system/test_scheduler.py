"""Tests for the host scheduler, buffering, and DRAM memory map."""

import pytest

from repro.system.pcie import PcieModel, polynomial_bytes
from repro.system.scheduler import (
    BUFFER_DEPTH,
    HostScheduler,
    MemoryMap,
    ScheduledOp,
)


@pytest.fixture()
def scheduler():
    return HostScheduler(
        PcieModel(peak_bytes_per_sec=15.75e9), message_bytes=polynomial_bytes(8192)
    )


def keyswitch_op(compute_seconds=1 / 22536.0):
    size = 5 * polynomial_bytes(8192)
    return ScheduledOp("keyswitch", size, 2 * size, compute_seconds)


class TestBufferDepths:
    def test_double_buffering_for_mult(self):
        assert BUFFER_DEPTH["mult"] == 2

    def test_quadruple_buffering_for_keyswitch(self):
        """Section 5.2: KeySwitch needs quadruple buffering (f1 = 4)."""
        assert BUFFER_DEPTH["keyswitch"] == 4


class TestScheduling:
    def test_empty_stream(self, scheduler):
        report = scheduler.run([])
        assert report.total_seconds == 0.0
        assert report.ops == 0

    def test_single_op_serial(self, scheduler):
        op = keyswitch_op()
        report = scheduler.run([op])
        assert report.total_seconds == pytest.approx(
            scheduler.pcie.transfer_time(op.input_bytes, scheduler.message_bytes)
            + op.compute_seconds
        )

    def test_pipeline_hides_transfers(self, scheduler):
        """With compute >> transfer, steady-state wall time ~ compute."""
        ops = [keyswitch_op() for _ in range(50)]
        report = scheduler.run(ops)
        assert report.compute_utilization > 0.9
        assert report.overlap_efficiency > 0.8

    def test_transfer_bound_stream(self, scheduler):
        """With compute << transfer, wall time ~ transfer total."""
        ops = [
            ScheduledOp("mult", 4 * polynomial_bytes(8192), 0, 1e-7)
            for _ in range(20)
        ]
        report = scheduler.run(ops)
        assert report.total_seconds >= 0.9 * report.transfer_seconds

    def test_stalls_counted_under_backpressure(self, scheduler):
        """Slow compute + fast writer => writer must stall on full buffers."""
        ops = [keyswitch_op(compute_seconds=1e-3) for _ in range(10)]
        report = scheduler.run(ops)
        assert report.writer_stalls > 0

    def test_compute_order_preserved(self, scheduler):
        ops = [keyswitch_op() for _ in range(5)]
        report = scheduler.run(ops)
        assert report.total_seconds >= 5 * ops[0].compute_seconds


class TestBatching:
    def test_batch_splits_to_polynomial_multiples(self, scheduler):
        sizes = scheduler.batch_polynomials(8192, 10)
        poly = polynomial_bytes(8192)
        assert sum(sizes) == 10 * poly
        for s in sizes:
            assert s % poly == 0

    def test_batch_respects_message_budget(self):
        sched = HostScheduler(
            PcieModel(15.75e9), message_bytes=4 * polynomial_bytes(4096)
        )
        sizes = sched.batch_polynomials(4096, 11)
        assert max(sizes) <= 4 * polynomial_bytes(4096)
        assert len(sizes) == 3  # 4 + 4 + 3


class TestMemoryMap:
    def test_store_and_lookup(self):
        mm = MemoryMap(dram_capacity_bytes=1 << 30)
        addr = mm.store("ct0", 1 << 20)
        assert mm.address_of("ct0") == addr
        assert mm.used_bytes == 1 << 20

    def test_duplicate_name_rejected(self):
        mm = MemoryMap(1 << 30)
        mm.store("ct0", 1024)
        with pytest.raises(KeyError):
            mm.store("ct0", 1024)

    def test_capacity_enforced(self):
        mm = MemoryMap(1024)
        with pytest.raises(MemoryError):
            mm.store("big", 2048)

    def test_release_frees_accounting(self):
        mm = MemoryMap(1 << 20)
        mm.store("a", 512)
        mm.release("a")
        assert mm.used_bytes == 0

    def test_saved_pcie_traffic(self):
        """Keeping a ciphertext device-side saves 2x its size per reuse."""
        mm = MemoryMap(1 << 30)
        mm.store("ct", 1 << 20)
        assert mm.saved_pcie_bytes("ct", reuses=3) == 6 * (1 << 20)


class TestBatchScheduledOps:
    def test_for_batch_byte_accounting(self):
        op = ScheduledOp.for_batch(
            "keyswitch", 8192, input_polys=40, output_polys=16,
            compute_seconds=1e-3,
        )
        assert op.kind == "keyswitch"
        assert op.input_bytes == 40 * polynomial_bytes(8192)
        assert op.output_bytes == 16 * polynomial_bytes(8192)
        assert op.compute_seconds == 1e-3

    def test_run_executed_bridges_measured_streams(self, scheduler):
        class FakeExecution:
            def scheduled_ops(self):
                return [keyswitch_op() for _ in range(10)]

        report = scheduler.run_executed(FakeExecution())
        assert report.ops == 10
        assert report.compute_utilization > 0
