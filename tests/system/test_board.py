"""Tests for board specifications (Table 1)."""

import pytest

from repro.system.board import get_board


class TestBoardSpecs:
    def test_arria10(self):
        b = get_board("Arria10")
        assert b.chip == "Arria 10 GX 1150"
        assert b.spec.dsp == 1518
        assert b.spec.m20k == 2700
        assert b.spec.dram_channels == 2
        assert b.clock_hz == 275e6

    def test_stratix10(self):
        b = get_board("Stratix10")
        assert b.chip == "Stratix 10 GX 2800"
        assert b.spec.dsp == 5760
        assert b.spec.m20k == 11_700
        assert b.spec.dram_channels == 4
        assert b.clock_hz == 300e6

    def test_stratix_is_strictly_bigger(self):
        a, s = get_board("Arria10").spec, get_board("Stratix10").spec
        assert s.dsp > a.dsp
        assert s.alm > a.alm
        assert s.bram_bits > a.bram_bits
        assert s.pcie_gbps > a.pcie_gbps

    def test_unknown_board(self):
        with pytest.raises(ValueError):
            get_board("Virtex")


class TestLinkRates:
    def test_pcie_bandwidths(self):
        assert get_board("Arria10").pcie_bytes_per_sec == pytest.approx(7.88e9)
        assert get_board("Stratix10").pcie_bytes_per_sec == pytest.approx(15.75e9)

    def test_dram_bandwidths(self):
        assert get_board("Stratix10").dram_bytes_per_sec == pytest.approx(64e9)


class TestFitChecks:
    def test_check_fit_fractions(self):
        b = get_board("Arria10")
        util = b.check_fit({"dsp": 759, "alm": 0, "reg": 0, "bram_bits": 0, "m20k": 0})
        assert util["dsp"] == pytest.approx(0.5)

    def test_budget_keys(self):
        assert set(get_board("Stratix10").budget()) == {
            "dsp", "reg", "alm", "bram_bits", "m20k",
        }
