"""Property-based tests for the BFV baseline (exactness is the point)."""

from hypothesis import given, settings, strategies as st

from repro.bfv import (
    BfvContext,
    BfvDecryptor,
    BfvEncoder,
    BfvEncryptor,
    BfvEvaluator,
    BfvKeyGenerator,
)
from repro.bfv.scheme import toy_bfv_parameters

_CTX = BfvContext(toy_bfv_parameters(n=16, q_bits=(30, 29)))
_KG = BfvKeyGenerator(_CTX, seed=1)
_PK = _KG.public_key()
_ENC = BfvEncoder(_CTX)
_ENCRYPTOR = BfvEncryptor(_CTX, _PK, seed=2)
_DECRYPTOR = BfvDecryptor(_CTX, _KG.secret)
_EV = BfvEvaluator(_CTX)

slots = st.lists(
    st.integers(min_value=0, max_value=_CTX.t - 1), min_size=16, max_size=16
)


class TestBfvProperties:
    @given(slots)
    @settings(max_examples=20, deadline=None)
    def test_encrypt_decrypt_exact(self, values):
        ct = _ENCRYPTOR.encrypt(_ENC.encode(values))
        assert _ENC.decode(_DECRYPTOR.decrypt(ct)) == values

    @given(slots, slots)
    @settings(max_examples=15, deadline=None)
    def test_homomorphic_addition_exact(self, a, b):
        ca = _ENCRYPTOR.encrypt(_ENC.encode(a))
        cb = _ENCRYPTOR.encrypt(_ENC.encode(b))
        out = _ENC.decode(_DECRYPTOR.decrypt(_EV.add(ca, cb)))
        assert out == [(x + y) % _CTX.t for x, y in zip(a, b)]

    @given(slots, slots)
    @settings(max_examples=8, deadline=None)
    def test_homomorphic_multiplication_exact(self, a, b):
        ca = _ENCRYPTOR.encrypt(_ENC.encode(a))
        cb = _ENCRYPTOR.encrypt(_ENC.encode(b))
        out = _ENC.decode(_DECRYPTOR.decrypt(_EV.multiply(ca, cb)))
        assert out == [(x * y) % _CTX.t for x, y in zip(a, b)]

    @given(slots)
    @settings(max_examples=10, deadline=None)
    def test_plain_multiplication_exact(self, a):
        ct = _ENCRYPTOR.encrypt(_ENC.encode(a))
        pt = _ENC.encode([3] * 16)
        out = _ENC.decode(_DECRYPTOR.decrypt(_EV.multiply_plain(ct, pt)))
        assert out == [(3 * x) % _CTX.t for x in a]

    @given(st.integers(min_value=-(10**9), max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_scale_round_is_nearest(self, v):
        got = _CTX.scale_round_t_over_q(v)
        exact = _CTX.t * v / _CTX.q
        assert abs(got - exact) <= 0.5
