"""Cross-backend differential tests for the BFV pipeline.

BFV's exact negacyclic multiply now routes through the active
:class:`PolynomialBackend` (satellite 1), so the scheme joins the same
differential discipline as CKKS: same-seed runs on reference and numpy
must produce bit-identical ciphertext polynomials at every stage, not
just equal decodes.
"""

from __future__ import annotations

import pytest

from repro.bfv import (
    BfvContext,
    BfvDecryptor,
    BfvEncoder,
    BfvEncryptor,
    BfvEvaluator,
    BfvKeyGenerator,
)
from repro.bfv.scheme import toy_bfv_parameters
from repro.ckks.backend import available_backends, use_backend

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="differential tests compare the numpy backend against reference",
)


def _pipeline(backend_name: str, seed: int = 11):
    """Encrypt, multiply, relinearize, and decrypt under one backend;
    return the poly-level trace."""
    with use_backend(backend_name):
        ctx = BfvContext(toy_bfv_parameters(n=64))
        kg = BfvKeyGenerator(ctx, seed=seed)
        encoder = BfvEncoder(ctx)
        encryptor = BfvEncryptor(ctx, kg.public_key(), seed=seed + 1)
        decryptor = BfvDecryptor(ctx, kg.secret)
        ev = BfvEvaluator(ctx)
        relin = kg.relin_key()

        a = encryptor.encrypt(encoder.encode([1, 2, 3, 4]))
        b = encryptor.encrypt(encoder.encode([5, 6, 7, 8]))
        prod = ev.multiply(a, b)
        rel = ev.relinearize(prod, relin)
        summed = ev.add(rel, a)
        return {
            "a": a.polys,
            "b": b.polys,
            "prod": prod.polys,
            "rel": rel.polys,
            "sum": summed.polys,
            "decoded": encoder.decode(decryptor.decrypt(summed)),
        }


def test_full_pipeline_bit_identical_across_backends():
    ref = _pipeline("reference")
    npy = _pipeline("numpy")
    for stage in ("a", "b", "prod", "rel", "sum"):
        assert ref[stage] == npy[stage], (
            f"BFV stage {stage!r} produced different polynomials on the "
            "numpy backend"
        )
    assert ref["decoded"] == npy["decoded"]


def test_decode_is_exact():
    """BFV is exact arithmetic: the decoded product-plus-a slots equal
    the integer model with no tolerance."""
    got = _pipeline("numpy")["decoded"]
    expected = [1 * 5 + 1, 2 * 6 + 2, 3 * 7 + 3, 4 * 8 + 4]
    assert list(got[: len(expected)]) == expected


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_seeded_runs_stay_bit_identical(seed):
    ref = _pipeline("reference", seed=seed)
    npy = _pipeline("numpy", seed=seed)
    assert ref["rel"] == npy["rel"] and ref["decoded"] == npy["decoded"]
