"""Tests for the BFV baseline scheme."""

import pytest

from repro.bfv import (
    BfvContext,
    BfvDecryptor,
    BfvEncoder,
    BfvEncryptor,
    BfvEvaluator,
    BfvKeyGenerator,
    BfvParameters,
)
from repro.bfv.scheme import toy_bfv_parameters


@pytest.fixture(scope="module")
def bfv():
    ctx = BfvContext(toy_bfv_parameters(n=64))
    kg = BfvKeyGenerator(ctx, seed=11)
    pk = kg.public_key()
    return {
        "ctx": ctx,
        "keygen": kg,
        "encoder": BfvEncoder(ctx),
        "encryptor": BfvEncryptor(ctx, pk, seed=12),
        "decryptor": BfvDecryptor(ctx, kg.secret),
        "evaluator": BfvEvaluator(ctx),
        "relin": kg.relin_key(),
    }


class TestParameters:
    def test_plain_modulus_congruence_enforced(self):
        with pytest.raises(ValueError):
            BfvParameters(64, 97, (30, 30), allow_insecure=True)  # 97 != 1 mod 128

    def test_plain_modulus_primality_enforced(self):
        with pytest.raises(ValueError):
            BfvParameters(64, 129, (30, 30), allow_insecure=True)

    def test_security_floor(self):
        with pytest.raises(ValueError):
            BfvParameters(64, 12289, (30, 30))

    def test_delta_is_q_over_t(self, bfv):
        ctx = bfv["ctx"]
        assert ctx.delta == ctx.q // ctx.t

    def test_extended_basis_large_enough(self, bfv):
        ctx = bfv["ctx"]
        assert ctx.ext_basis.product > 4 * ctx.n * ctx.q * ctx.q


class TestBatchingEncoder:
    def test_roundtrip(self, bfv):
        vals = [0, 1, 2, 12345, bfv["ctx"].t - 1]
        pt = bfv["encoder"].encode(vals)
        out = bfv["encoder"].decode(pt)
        assert out[: len(vals)] == vals
        assert all(v == 0 for v in out[len(vals):])

    def test_too_many_values(self, bfv):
        with pytest.raises(ValueError):
            bfv["encoder"].encode([1] * 65)

    def test_values_reduced_mod_t(self, bfv):
        t = bfv["ctx"].t
        pt = bfv["encoder"].encode([t + 5])
        assert bfv["encoder"].decode(pt)[0] == 5


class TestEncryption:
    def test_roundtrip(self, bfv):
        vals = [7, 0, 999]
        ct = bfv["encryptor"].encrypt(bfv["encoder"].encode(vals))
        out = bfv["encoder"].decode(bfv["decryptor"].decrypt(ct))
        assert out[:3] == vals

    def test_fresh_noise_budget_positive(self, bfv):
        ct = bfv["encryptor"].encrypt(bfv["encoder"].encode([1]))
        assert bfv["decryptor"].noise_budget_bits(ct) > 15

    def test_exact_arithmetic_no_approximation(self, bfv):
        """BFV is exact: large slot values decrypt verbatim (contrast
        with CKKS's approximate decryption)."""
        t = bfv["ctx"].t
        vals = [t - 1, t // 2, 1]
        ct = bfv["encryptor"].encrypt(bfv["encoder"].encode(vals))
        assert bfv["encoder"].decode(bfv["decryptor"].decrypt(ct))[:3] == vals


class TestHomomorphicOps:
    def test_add(self, bfv):
        t = bfv["ctx"].t
        a = bfv["encryptor"].encrypt(bfv["encoder"].encode([100, t - 1]))
        b = bfv["encryptor"].encrypt(bfv["encoder"].encode([23, 2]))
        out = bfv["encoder"].decode(bfv["decryptor"].decrypt(bfv["evaluator"].add(a, b)))
        assert out[:2] == [123, 1]  # wraps mod t

    def test_multiply_slotwise(self, bfv):
        a = bfv["encryptor"].encrypt(bfv["encoder"].encode([3, 5, 7]))
        b = bfv["encryptor"].encrypt(bfv["encoder"].encode([11, 13, 17]))
        prod = bfv["evaluator"].multiply(a, b)
        assert prod.size == 3
        out = bfv["encoder"].decode(bfv["decryptor"].decrypt(prod))
        assert out[:3] == [33, 65, 119]

    def test_relinearize_preserves_values(self, bfv):
        a = bfv["encryptor"].encrypt(bfv["encoder"].encode([9, 4]))
        b = bfv["encryptor"].encrypt(bfv["encoder"].encode([2, 25]))
        rel = bfv["evaluator"].relinearize(
            bfv["evaluator"].multiply(a, b), bfv["relin"]
        )
        assert rel.size == 2
        out = bfv["encoder"].decode(bfv["decryptor"].decrypt(rel))
        assert out[:2] == [18, 100]

    def test_relinearize_requires_size3(self, bfv):
        ct = bfv["encryptor"].encrypt(bfv["encoder"].encode([1]))
        with pytest.raises(ValueError):
            bfv["evaluator"].relinearize(ct, bfv["relin"])

    def test_multiply_plain(self, bfv):
        ct = bfv["encryptor"].encrypt(bfv["encoder"].encode([6, 7]))
        pt = bfv["encoder"].encode([10, 100])
        out = bfv["encoder"].decode(
            bfv["decryptor"].decrypt(bfv["evaluator"].multiply_plain(ct, pt))
        )
        assert out[:2] == [60, 700]

    def test_add_plain(self, bfv):
        ct = bfv["encryptor"].encrypt(bfv["encoder"].encode([6]))
        pt = bfv["encoder"].encode([100])
        out = bfv["encoder"].decode(
            bfv["decryptor"].decrypt(bfv["evaluator"].add_plain(ct, pt))
        )
        assert out[0] == 106

    def test_multiplication_consumes_noise_budget(self, bfv):
        a = bfv["encryptor"].encrypt(bfv["encoder"].encode([2]))
        b = bfv["encryptor"].encrypt(bfv["encoder"].encode([3]))
        fresh = bfv["decryptor"].noise_budget_bits(a)
        prod = bfv["evaluator"].multiply(a, b)
        assert bfv["decryptor"].noise_budget_bits(prod) < fresh


class TestExactTensoring:
    def test_exact_product_matches_schoolbook(self, bfv):
        """The extended-RNS exact multiply equals big-int schoolbook."""
        ctx = bfv["ctx"]
        import random

        rng = random.Random(3)
        a = [rng.randrange(-1000, 1000) for _ in range(ctx.n)]
        b = [rng.randrange(-1000, 1000) for _ in range(ctx.n)]
        got = ctx.exact_negacyclic_multiply(a, b)
        ref = [0] * ctx.n
        for i in range(ctx.n):
            for j in range(ctx.n):
                k = i + j
                if k < ctx.n:
                    ref[k] += a[i] * b[j]
                else:
                    ref[k - ctx.n] -= a[i] * b[j]
        assert got == ref

    def test_scale_round(self, bfv):
        ctx = bfv["ctx"]
        assert ctx.scale_round_t_over_q(ctx.q) == ctx.t
        assert ctx.scale_round_t_over_q(0) == 0
        assert ctx.scale_round_t_over_q(-ctx.q) == -ctx.t
