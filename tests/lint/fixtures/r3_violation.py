# lint-fixture-path: src/repro/serving/pump.py
# R3 violating fixture, four findings expected: a from-import of a
# banned time name, two wall-clock reads deciding a deadline, and a
# module-level RNG draw.

import random
import time
from time import monotonic


def deadline_loop(work):
    deadline = time.monotonic() + 5.0
    while time.time() < deadline:
        if random.random() < 0.5:
            work()
