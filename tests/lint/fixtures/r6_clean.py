# lint-fixture-path: src/repro/serving/fixture.py
# R6 clean fixture: single rotations outside loops are legal, a loop
# may *build* plan rotate nodes under an inline escape, and a def
# inside a loop resets the loop context.


def rotate_once(ev, ct, keys):
    return ev.rotate(ct, 1, keys)


def build_sweep_plan(graph, input_node, steps):
    rotated = {}
    for step in steps:
        # the graph is the fix, not the bug: the executor fuses these
        rotated[step] = graph.rotate(input_node, step)  # lint: disable=R6 -- plan node
    return rotated


def make_rotators(ev, keys, steps):
    rotators = []
    for step in steps:

        def rotate(ct, _step=step):
            return ev.rotate(ct, _step, keys)

        rotators.append(rotate)
    return rotators
