# lint-fixture-path: src/repro/serving/supervisor.py
# R5 clean fixture (stat recording): recovery machinery may absorb a
# broad failure by *counting* it -- a probe that raises is a missed
# probe, and the count drives the restart path that answers clients.


class Probe:
    def probe(self, handle):
        try:
            ok = handle.ping()
        except Exception:
            self.stats.probe_errors += 1
            ok = False
        return ok

    def retry(self, send, data):
        try:
            send(data)
        except Exception:
            self.failed_sends += 1
