# lint-fixture-path: src/repro/lintfix/wrapper.py
# R2 violating fixture, three findings expected:
#   * 'add' is never wrapped (falls through to the base default);
#   * 'ntt' drifts from the base signature;
#   * 'tally' is a public method naming no interface kernel.


class Wrapper:
    def ntt(self, modulus, rows, extra):
        return self.inner.ntt(modulus, rows)

    def tally(self):
        return 0
