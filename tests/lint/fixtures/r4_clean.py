# lint-fixture-path: src/repro/ckks/serialization.py
# R4 clean fixture: the wire object has both directions and the
# decoder validates the exact payload length before decoding.


def _check_payload(payload, expected):
    if len(payload) != expected:
        raise ValueError("payload length mismatch")


def serialize_widget(widget):
    return bytes([widget.kind])


def deserialize_widget(payload):
    _check_payload(payload, 1)
    return payload[0]
