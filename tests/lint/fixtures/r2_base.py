# lint-fixture-path: src/repro/lintfix/base.py
# R2 shared fixture: a miniature kernel interface the wrapper fixtures
# are checked against (the rule is configured onto these module names).


class Base:
    def ntt(self, modulus, rows):
        raise NotImplementedError

    def add(self, modulus, x, y):
        raise NotImplementedError
