# lint-fixture-path: src/repro/ckks/evaluator.py
# R1 clean fixture: stays on backend-native handles, chaining *_rows
# kernels without ever lowering to canonical lists.


def multiply_components(backend, modulus, a_handle, b_handle):
    return backend.dyadic_stack_reduce(modulus, a_handle, b_handle)
