# lint-fixture-path: src/repro/serving/handler.py
# R5 violating fixture: a broad handler swallows the failure without
# an ERROR frame or re-raise -- the request silently disappears.


def handle(frame, worker):
    try:
        worker.submit(frame)
    except Exception:
        pass
