# lint-fixture-path: src/repro/ckks/evaluator.py
# R1 violating fixture: materializes canonical residue lists inside a
# hot-path module (two spellings, two findings expected).


def lower_to_python(ct):
    rows = ct.c0.residues
    flat = ct.c1.to_rows()
    return rows, flat
