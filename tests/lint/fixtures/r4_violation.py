# lint-fixture-path: src/repro/ckks/serialization.py
# R4 violating fixture, three findings expected: an encoder without its
# decoder, a decoder without its encoder, and that same decoder never
# running the exact-length payload check.


def serialize_widget(widget):
    return bytes([widget.kind])


def deserialize_gadget(payload):
    return payload[0]
