# lint-fixture-path: src/repro/serving/fixture.py
# R6 violating fixture: per-step rotation loops in a serving module
# (three findings expected: for-loop rotate, while-loop unhoisted
# rotate, method-body sweep loop).


def rotate_sweep(ev, ct, steps, keys):
    out = []
    for step in steps:
        out.append(ev.rotate(ct, step, keys))
    return out


def drain_rotations(ev, ct, keys):
    step = 1
    while step < 8:
        ct = ev.rotate_unhoisted(ct, step, keys)
        step *= 2
    return ct


class SweepWorker:
    def run(self, requests):
        for request in requests:
            request.result = self.evaluator.rotate(
                request.ciphertext, request.step, self.galois_keys
            )
