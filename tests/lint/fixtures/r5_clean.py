# lint-fixture-path: src/repro/serving/handler.py
# R5 clean fixture: the narrow handler names the survivable failure;
# the broad one answers the client with an error response.


def handle(frame, worker, outbox):
    try:
        worker.submit(frame)
    except ValueError:
        pass
    except Exception as exc:
        outbox.respond_error(frame, exc)
