# lint-fixture-path: src/repro/serving/pump.py
# R3 clean fixture: deadlines flow through the injectable Clock, the
# RNG is an owned seeded instance, and time.perf_counter stays legal
# (it measures durations for stats, never decides deadlines).

import random
import time

from repro.serving.clock import SYSTEM_CLOCK, Clock


def deadline_loop(work, clock: Clock = SYSTEM_CLOCK):
    rng = random.Random(1234)
    started = time.perf_counter()
    deadline = clock() + 5.0
    while clock() < deadline:
        if rng.random() < 0.5:
            work()
    return time.perf_counter() - started
