# lint-fixture-path: src/repro/serving/supervisor.py
# R5 violating fixture (stat recording): bumping a counter that does
# not name a failure is bookkeeping, not accounting -- the request
# still disappears silently.


class Probe:
    def probe(self, handle):
        try:
            ok = handle.ping()
        except Exception:
            self.cache_hits += 1
            ok = False
        return ok
