# lint-fixture-path: src/repro/lintfix/wrapper.py
# R2 clean fixture: wraps every kernel with the exact base signature;
# 'reset' is on the allowed-extras list.


class Wrapper:
    def ntt(self, modulus, rows):
        return self.inner.ntt(modulus, rows)

    def add(self, modulus, x, y):
        return self.inner.add(modulus, x, y)

    def reset(self):
        pass
