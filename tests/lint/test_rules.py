"""Per-rule fixture tests for ``repro.lint``.

Every rule ships a violating and a clean fixture under ``fixtures/``.
Each fixture's first line declares the *virtual path* it is analyzed
under (``# lint-fixture-path: src/repro/...``): the analyzer derives
dotted module names from paths, so a snippet loaded under
``src/repro/serving/pump.py`` is subject to exactly the production
rule configuration -- no monkeypatching of rule scopes.
"""

import os

import pytest

from repro.lint import (
    Finding,
    default_rules,
    run_lint,
    source_from_text,
)
from repro.lint.core import collect_sources, load_baseline, module_name_for
from repro.lint.rules import REGISTERED_RULES
from repro.lint.rules.conformance import BackendConformanceRule
from repro.lint.rules.determinism import ServingDeterminismRule
from repro.lint.rules.exceptions import ExceptionDisciplineRule
from repro.lint.rules.planner import PlannerDisciplineRule
from repro.lint.rules.residency import ResidencyRule
from repro.lint.rules.wire import WireDisciplineRule

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
PATH_MARKER = "# lint-fixture-path: "


def load_fixture(name):
    """Parse a fixture under the virtual path its header declares."""
    with open(os.path.join(FIXTURE_DIR, name), "r", encoding="utf-8") as fh:
        text = fh.read()
    header = text.splitlines()[0]
    assert header.startswith(PATH_MARKER), name
    virtual_path = header[len(PATH_MARKER):].strip()
    return source_from_text(virtual_path, text)


def lint_fixture(name, rule):
    return run_lint([load_fixture(name)], rules=[rule])


#: R2 is a cross-module rule: point it at the fixture interface.
def fixture_conformance_rule():
    return BackendConformanceRule(
        base_module="repro.lintfix.base",
        base_class="Base",
        implementations=(("repro.lintfix.wrapper", "Wrapper", "wrap"),),
    )


# ----------------------------------------------------------------------
# module rules: violating fixture fires, clean fixture is silent
# ----------------------------------------------------------------------
MODULE_RULE_CASES = [
    ("R1", ResidencyRule, "r1_violation.py", "r1_clean.py", 2),
    ("R3", ServingDeterminismRule, "r3_violation.py", "r3_clean.py", 4),
    ("R4", WireDisciplineRule, "r4_violation.py", "r4_clean.py", 3),
    ("R5", ExceptionDisciplineRule, "r5_violation.py", "r5_clean.py", 1),
    # R5, recovery-machinery variant: counting the failure into a stat
    # named for failure is accounting; bumping an unrelated counter is not
    ("R5", ExceptionDisciplineRule, "r5_stats_violation.py", "r5_stats_clean.py", 1),
    ("R6", PlannerDisciplineRule, "r6_violation.py", "r6_clean.py", 3),
]


@pytest.mark.parametrize(
    "rule_id,rule_cls,bad,good,expected",
    MODULE_RULE_CASES,
    ids=[case[0] for case in MODULE_RULE_CASES],
)
def test_rule_fires_on_violating_fixture(rule_id, rule_cls, bad, good, expected):
    result = lint_fixture(bad, rule_cls())
    assert len(result.findings) == expected
    assert {f.rule for f in result.findings} == {rule_id}
    # every finding carries a location and an enclosing symbol
    for finding in result.findings:
        assert finding.line >= 1
        assert finding.symbol


@pytest.mark.parametrize(
    "rule_id,rule_cls,bad,good,expected",
    MODULE_RULE_CASES,
    ids=[case[0] for case in MODULE_RULE_CASES],
)
def test_rule_silent_on_clean_fixture(rule_id, rule_cls, bad, good, expected):
    result = lint_fixture(good, rule_cls())
    assert result.ok, [str(f) for f in result.findings]


def test_r2_fires_on_violating_wrapper():
    modules = [load_fixture("r2_base.py"), load_fixture("r2_violation.py")]
    result = run_lint(modules, rules=[fixture_conformance_rule()])
    messages = [f.message for f in result.findings]
    assert len(result.findings) == 3
    assert {f.rule for f in result.findings} == {"R2"}
    assert any("does not wrap kernel 'add'" in m for m in messages)
    assert any("signature drift on kernel 'ntt'" in m for m in messages)
    assert any("names no Base kernel" in m for m in messages)


def test_r2_silent_on_clean_wrapper():
    modules = [load_fixture("r2_base.py"), load_fixture("r2_clean.py")]
    result = run_lint(modules, rules=[fixture_conformance_rule()])
    assert result.ok, [str(f) for f in result.findings]


def test_r2_silent_without_interface_module():
    # a partial run that never loads the interface holds no relation
    result = run_lint([load_fixture("r2_violation.py")],
                      rules=[fixture_conformance_rule()])
    assert result.ok


# ----------------------------------------------------------------------
# scoping: the same code outside the rule's namespace is not flagged
# ----------------------------------------------------------------------
def test_rules_scope_by_module_name():
    with open(os.path.join(FIXTURE_DIR, "r3_violation.py"), encoding="utf-8") as fh:
        text = fh.read()
    elsewhere = source_from_text("src/repro/analysis/offline.py", text)
    result = run_lint([elsewhere], rules=[ServingDeterminismRule()])
    assert result.ok  # wall-clock reads outside repro.serving are legal


def test_module_name_matching_is_not_prefix_sloppy():
    assert module_name_for("src/repro/serving/worker.py") == "repro.serving.worker"
    assert module_name_for("src/repro/serving/__init__.py") == "repro.serving"
    # 'repro.servingx' must NOT fall under the repro.serving rules
    sneaky = source_from_text("src/repro/servingx.py", "import time\nt = time.time()\n")
    assert run_lint([sneaky], rules=[ServingDeterminismRule()]).ok


# ----------------------------------------------------------------------
# suppressions and baseline
# ----------------------------------------------------------------------
def test_inline_suppression_silences_one_line():
    text = (
        "def snapshot(ct):\n"
        "    return ct.c0.residues  # lint: disable=R1 -- golden dump\n"
    )
    module = source_from_text("src/repro/ckks/evaluator.py", text)
    result = run_lint([module], rules=[ResidencyRule()])
    assert result.ok
    assert len(result.suppressed) == 1
    assert result.suppressed[0].rule == "R1"


def test_inline_suppression_all_token():
    text = "def snapshot(ct):\n    return ct.c0.residues  # lint: disable=all\n"
    module = source_from_text("src/repro/ckks/evaluator.py", text)
    assert run_lint([module], rules=[ResidencyRule()]).ok


def test_inline_suppression_wrong_rule_does_not_silence():
    text = (
        "def snapshot(ct):\n"
        "    return ct.c0.residues  # lint: disable=R4 -- wrong rule\n"
    )
    module = source_from_text("src/repro/ckks/evaluator.py", text)
    result = run_lint([module], rules=[ResidencyRule()])
    assert not result.ok


def test_baseline_parks_findings_by_fingerprint(tmp_path):
    module = load_fixture("r5_violation.py")
    hot = run_lint([module], rules=[ExceptionDisciplineRule()])
    assert len(hot.findings) == 1
    fp = hot.findings[0].fingerprint
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        '[{"rule": "%s", "path": "%s", "symbol": "%s"}]' % fp
    )
    parked = run_lint(
        [module],
        rules=[ExceptionDisciplineRule()],
        baseline=load_baseline(str(baseline_path)),
    )
    assert parked.ok
    assert len(parked.baselined) == 1
    # the fingerprint is line-free: the same symbol moved 100 lines
    # down still matches (unrelated edits above must not unpark it)
    assert "line" not in repr(fp)


def test_baseline_rejects_malformed_entries(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text('[{"rule": "R1"}]')
    with pytest.raises(ValueError):
        load_baseline(str(bad))


# ----------------------------------------------------------------------
# infrastructure
# ----------------------------------------------------------------------
def test_unparseable_module_is_a_finding(tmp_path):
    target = tmp_path / "src" / "repro" / "broken.py"
    target.parent.mkdir(parents=True)
    target.write_text("def broken(:\n")
    modules, errors = collect_sources([str(tmp_path)])
    assert modules == []
    assert len(errors) == 1
    assert errors[0].rule == "E0"
    result = run_lint(modules, rules=default_rules(), parse_errors=errors)
    assert not result.ok


def test_registered_rules_have_unique_ids_and_origins():
    ids = [cls.id for cls in REGISTERED_RULES]
    assert len(ids) == len(set(ids))
    assert len(ids) >= 5
    for cls in REGISTERED_RULES:
        assert cls.invariant_origin, cls.id


def test_finding_str_is_grepable():
    finding = Finding(
        rule="R1", path="src/repro/x.py", line=7, symbol="A.b", message="boom"
    )
    assert str(finding) == "src/repro/x.py:7: R1 [A.b] boom"
