"""End-to-end tests of the ``python -m repro.lint`` entry point.

The acceptance bar of the analyzer PR: the repo's own ``src/`` tree
lints clean with the shipped (empty) baseline, violations drive a
non-zero exit status, and the JSON report is a well-formed CI
artifact.
"""

import json
import os
import subprocess
import sys

from repro.lint import format_human, lint_paths, to_json_dict
from repro.lint.__main__ import main

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
SRC = os.path.join(REPO_ROOT, "src")


def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_repo_src_lints_clean():
    """The headline acceptance criterion: the analyzer passes on the
    repo's own code with the shipped baseline (which is empty)."""
    proc = run_cli(SRC)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro.lint: clean" in proc.stdout


def test_repo_src_lints_clean_even_without_baseline():
    """Stronger than the PR demands for R1-R3: the whole repo holds
    every rule with no baseline escape hatch at all."""
    proc = run_cli(SRC, "--no-baseline")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_exits_one_on_violation(tmp_path):
    bad = tmp_path / "repro" / "serving" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\n\ndef f():\n    return time.monotonic()\n")
    proc = run_cli(str(bad), "--no-baseline", cwd=str(tmp_path))
    assert proc.returncode == 1
    assert "R3" in proc.stdout
    assert "1 finding(s)" in proc.stdout


def test_cli_json_report(tmp_path):
    report = tmp_path / "nested" / "LINT_report.json"
    proc = run_cli(SRC, "--json", str(report))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(report.read_text())
    assert payload["schema"] == "repro.lint/1"
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["checked_files"] > 50
    ids = [rule["id"] for rule in payload["rules"]]
    assert ids == sorted(ids) and len(ids) >= 5
    for rule in payload["rules"]:
        assert rule["invariant_origin"]


def test_cli_rule_selection_and_listing():
    proc = run_cli(SRC, "--rules", "R1,R3")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "2 rule(s)" in proc.stdout
    listing = run_cli("--list-rules")
    assert listing.returncode == 0
    for rule_id in ("R1", "R2", "R3", "R4", "R5"):
        assert rule_id + ":" in listing.stdout


def test_cli_usage_errors_exit_two(tmp_path):
    assert run_cli(SRC, "--rules", "R99").returncode == 2
    assert run_cli(str(tmp_path / "nowhere")).returncode == 2


def test_main_in_process_matches_subprocess(tmp_path, capsys):
    """The CLI is importable and exercisable without a subprocess --
    what the fixture tests and future tooling build on."""
    assert main([SRC]) == 0
    out = capsys.readouterr().out
    assert "repro.lint: clean" in out


def test_human_and_json_reports_agree():
    result = lint_paths([SRC])
    human = format_human(result)
    machine = to_json_dict(result)
    assert result.ok
    assert "clean" in human
    assert machine["ok"] is True
    assert machine["checked_files"] == result.checked_files


def test_shipped_baseline_is_empty():
    """The PR's acceptance bar: no parked findings at merge time --
    every true positive was fixed, not baselined away."""
    with open(os.path.join(REPO_ROOT, "lint-baseline.json")) as fh:
        assert json.load(fh) == []
